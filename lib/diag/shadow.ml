(* Slots 0..cap-1 hold resident lines; [prev]/[next] link them in recency
   order ([head] = MRU, [tail] = LRU).  -1 is the null link. *)
type t = {
  cap : int;
  slot_of : (int, int) Hashtbl.t;  (* line -> slot *)
  line_of : int array;
  prev : int array;
  next : int array;
  mutable head : int;
  mutable tail : int;
  mutable size : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Shadow.create: capacity must be positive";
  {
    cap = capacity;
    slot_of = Hashtbl.create (2 * capacity);
    line_of = Array.make capacity (-1);
    prev = Array.make capacity (-1);
    next = Array.make capacity (-1);
    head = -1;
    tail = -1;
    size = 0;
  }

let mem t line = Hashtbl.mem t.slot_of line

let unlink t slot =
  let p = t.prev.(slot) and n = t.next.(slot) in
  if p >= 0 then t.next.(p) <- n else t.head <- n;
  if n >= 0 then t.prev.(n) <- p else t.tail <- p

let push_front t slot =
  t.prev.(slot) <- -1;
  t.next.(slot) <- t.head;
  if t.head >= 0 then t.prev.(t.head) <- slot;
  t.head <- slot;
  if t.tail < 0 then t.tail <- slot

let touch t line =
  match Hashtbl.find_opt t.slot_of line with
  | Some slot ->
      if t.head <> slot then begin
        unlink t slot;
        push_front t slot
      end
  | None ->
      let slot =
        if t.size < t.cap then begin
          let s = t.size in
          t.size <- t.size + 1;
          s
        end
        else begin
          (* Evict the LRU line and reuse its slot. *)
          let s = t.tail in
          Hashtbl.remove t.slot_of t.line_of.(s);
          unlink t s;
          s
        end
      in
      t.line_of.(slot) <- line;
      Hashtbl.replace t.slot_of line slot;
      push_front t slot

let size t = t.size

(** Cache diagnostics: miss classification, per-segment attribution and
    eviction conflict matrices around one instruction-cache simulation.

    Wraps an {!Olayout_cachesim.Icache} and consumes the same rendered
    fetch-run stream.  Every demand miss is classified into the standard
    three Cs:

    - {e compulsory} — first reference to the line anywhere in the run;
    - {e conflict} — the line was resident in a same-capacity
      fully-associative LRU shadow cache ({!Shadow}) fed the same line
      stream, so only set contention evicted it: the kind of miss a
      placement change can remove;
    - {e capacity} — the shadow cache missed too: the working set does not
      fit at any associativity.

    Misses and evictions are charged to named code segments through a
    {!Resolver}, and every replacement is recorded in a per-set
    (evictor segment, victim segment) conflict matrix — the "killer pairs"
    whose separation a layout fix should target.  Classification totals
    also feed the process-wide [diag.*] telemetry counters, so they appear
    in [--telemetry-summary] and in the JSONL sink. *)

module Icache = Olayout_cachesim.Icache
module Histogram = Olayout_metrics.Histogram

type t

val create : ?timeline:string -> resolver:Resolver.t -> Icache.config -> t
(** A diagnosed cache of the given geometry.  The wrapped icache is
    created without prefetch (classification is defined over demand
    references).

    [~timeline:prefix] (effective only while [Olayout_telemetry.Timeline]
    is enabled) samples the Shadow LRU's resident line count and the
    all-time unique-line count once per fed run into the instruction-clock
    series [diag.<prefix>.working_set_lines] /
    [diag.<prefix>.unique_lines]. *)

val access_run : t -> Olayout_exec.Run.t -> unit
(** Feed one fetch run: the wrapped icache sees exactly the line-touch
    sequence a plain [Icache.access_run] would, and the shadow cache and
    attribution tables observe the same stream. *)

val icache : t -> Icache.t
(** The wrapped cache (for [misses], [cfg], usage counters...). *)

type totals = {
  total : int;  (** demand misses, = compulsory + capacity + conflict *)
  compulsory : int;
  capacity : int;
  conflict : int;
  cold : int;
      (** installs into empty slots, the icache's own cold counter;
          [cold <= compulsory] (a first reference can still evict). *)
}

val totals : t -> totals

type seg_row = {
  seg_name : string;
  seg_owner : Olayout_exec.Run.owner option;  (** [None] for unresolved *)
  seg_misses : int;
  seg_compulsory : int;
  seg_capacity : int;
  seg_conflict : int;
  seg_evictions_caused : int;   (** replacements where this segment's line moved in *)
  seg_evictions_suffered : int; (** replacements where this segment's line moved out *)
}

val by_segment : ?top:int -> t -> seg_row list
(** Segments by descending miss count (ties by name); only segments with
    any activity.  [top] truncates (default: all). *)

type conflict_pair = {
  cp_evictor : string;
  cp_victim : string;
  cp_count : int;     (** replacements, summed over sets *)
  cp_sets : int;      (** distinct cache sets where the pair collided *)
  cp_hot_set : int;   (** the set with the most collisions *)
  cp_hot_count : int; (** collisions in that set *)
}

val conflict_pairs : ?top:int -> t -> conflict_pair list
(** (evictor segment, victim segment) pairs by descending count. *)

val set_pressure : t -> Histogram.t
(** Distribution of per-set demand-miss counts: key = misses a set took.
    A long tail means a few sets carry the conflict pressure — exactly
    what coloring/placement should flatten. *)

val hot_sets : ?top:int -> t -> (int * int) list
(** The most-missing sets as [(set index, misses)], descending. *)

val json : ?top:int -> t -> Olayout_telemetry.Json.t
(** Machine-readable dump: geometry, classification totals, per-segment
    attribution and the conflict matrix ([top] bounds both lists,
    default 20).  Embedded by the harness in [DIAG_<scale>.json]. *)

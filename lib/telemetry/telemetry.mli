(** Process-wide instrumentation for the reproduction pipeline.

    Three kinds of instruments, all registered in a global registry under
    dotted string names ([subsystem.metric]):

    - {b counters} — monotonic ints behind handles; resolving the handle
      (once, at module initialization) pays the hashtable lookup, so the
      increment on a hot path (per fetch run, per cache access) is a single
      memory write.  Counters are {e always} live: they feed user-visible
      features such as [--trace-stats] whether or not span telemetry is
      enabled.
    - {b gauges} — float values with set/accumulate semantics (e.g. resident
      trace-cache bytes, cumulative replay seconds).
    - {b histograms} — power-of-two bucketed int distributions (bucket 0
      holds values <= 0; bucket i >= 1 holds [2^(i-1), 2^i)).

    {b Spans} measure wall-clock around a thunk and nest: each span's path
    is its ancestors' names joined with ['/'] (e.g.
    ["report/fig7/optimize/chaining"]).  Aggregates (count, total, max per
    path) accumulate in the registry; when a JSONL sink is attached every
    span completion also appends one JSON event line.  When telemetry is
    {e disabled} ({!set_enabled}[ false]), {!span} is a direct call to the
    thunk — no clock reads, no allocation.

    The registry is process-global.  On the serial path every write is a
    direct memory update, exactly as before.  Under a Domain work pool
    ({!set_parallel}), writes made inside {!Isolated.capture} land in a
    domain-local shadow registry (dense arrays indexed by handle id,
    resolved through [Domain.DLS]); {!Isolated.merge} folds a shadow into
    the global registry deterministically — snapshots merged in submission
    order, instrument names sorted within each snapshot — so a parallel
    run reproduces the serial counter values bit-for-bit. *)

val set_enabled : bool -> unit
(** Enable/disable span recording (default: enabled).  Counters, gauges and
    histograms are unaffected — they are cheap enough to always run and
    back always-on reporting ([--trace-stats]). *)

val enabled : unit -> bool

(** {1 Counters} *)

type counter

val counter : string -> counter
(** Find-or-register the counter named [name].  The same name always yields
    the same handle. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int
val counter_name : counter -> string

(** {1 Gauges} *)

type gauge

val gauge : string -> gauge
val set_gauge : gauge -> float -> unit
val add_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

(** {1 Histograms} *)

type histogram

val histogram : string -> histogram
val observe : histogram -> int -> unit

val histogram_buckets : histogram -> (int * int) list
(** Non-empty buckets as [(bucket floor, count)], ascending. *)

(** {1 Spans} *)

val span : string -> (unit -> 'a) -> 'a
(** [span name f] runs [f] inside a span.  Disabled path: tail call to
    [f]. *)

val timed : string -> (unit -> 'a) -> 'a * float
(** As {!span} but also returns the elapsed wall seconds.  The duration is
    measured even when telemetry is disabled (callers print it), but
    nothing is recorded then. *)

type span_stat = {
  span_path : string;
  span_count : int;
  span_total_s : float;
  span_max_s : float;
}

val span_stats : unit -> span_stat list
(** Aggregated spans, sorted by path. *)

val current_span_stack : unit -> string list
(** The active span paths, innermost first (domain-local under a pool).
    Pass to {!Isolated.capture} as [inherit_spans] so spans opened inside a
    pool task nest under the dispatcher's path exactly as they would have
    serially. *)

(** {1 Parallel capture}

    The Domain work pool ([Olayout_par.Pool]) runs every task inside
    {!Isolated.capture} and merges the snapshots back in submission order,
    which keeps deterministic counters identical between [-j 1] and
    [-j N]. *)

val set_parallel : bool -> unit
(** Flip the parallel-mode flag (set by the pool while worker domains are
    live).  While off — the default — the shadow lookup is skipped entirely
    and every instrument write takes the original single-threaded path. *)

val in_isolated : unit -> bool
(** True while executing inside {!Isolated.capture} (i.e. inside a pool
    task).  Used as a guard by code that must not run on a worker, such as
    a live workload walk that mutates shared state. *)

module Isolated : sig
  type snapshot
  (** Every instrument write made during one {!capture}: counter deltas,
      gauge updates (with set-vs-accumulate semantics preserved), histogram
      buckets, span aggregates, and buffered JSONL events. *)

  val capture : inherit_spans:string list -> (unit -> 'a) -> 'a * snapshot
  (** Run [f] with a fresh domain-local shadow registry (nesting restores
      the previous shadow on exit, even on exceptions).  [inherit_spans]
      seeds the shadow's span stack — pass the dispatcher's
      {!current_span_stack} so paths match the serial run. *)

  val merge : snapshot -> unit
  (** Fold the snapshot into the global registry (names sorted within the
      snapshot) and flush its buffered JSONL events.  Call from the
      dispatching domain, in task-submission order. *)

  val snap_counter : snapshot -> string -> int
  (** The snapshot's own delta for a named counter (0 if untouched). *)

  val snap_gauge : snapshot -> string -> float
  (** The snapshot's accumulated value for a named gauge (0 if untouched). *)
end

(** {1 Registry snapshots} *)

val counters : unit -> (string * int) list
(** All registered counters, sorted by name (zero-valued included, so two
    snapshots of the same process always align). *)

val gauges : unit -> (string * float) list
val histograms : unit -> (string * (int * int) list) list

val reset : unit -> unit
(** Zero every registered instrument and drop span aggregates.  Handles
    stay valid (they are zeroed in place, not removed). *)

(** {1 Watched instruments}

    Counters and gauges registered here are sampled into an attached JSONL
    sink at every span completion as [{"ev":"sample","t_s":...,"name":...,
    "value":...}] lines — the value-over-time stream behind the Chrome
    trace export's counter tracks.  No-ops while no sink is attached. *)

val watch_counter : counter -> unit
val watch_gauge : gauge -> unit

(** {1 Sinks} *)

val open_jsonl_file : string -> unit
(** Attach a JSONL event sink writing to [path] (truncates; closes any
    previously attached sink).  Each span completion appends one JSON
    object per line. *)

val close_jsonl : unit -> unit
(** Flush a final registry dump (counter/gauge/histogram/span_summary
    events) and close the sink.  No-op when none is attached. *)

val pp_summary : Format.formatter -> unit -> unit
(** Pretty console summary of span aggregates and the registry. *)

(* Process-wide instrumentation: hierarchical spans, a registry of
   counters/gauges/histograms, and pluggable sinks (JSONL event stream,
   console summary; the bench summary artifact lives in Bench_artifact).

   Design constraints (see telemetry.mli):
   - counters are plain mutable ints behind handles resolved once at module
     init, so hot paths (per fetch run, per cache access) pay one memory
     increment and nothing else;
   - spans are coarse (per figure, per optimizer pass, per replay batch) and
     have a disabled path that is a direct tail call to the thunk. *)

let t0 = Unix.gettimeofday ()
let now_rel () = Unix.gettimeofday () -. t0

let enabled_flag = ref true
let set_enabled b = enabled_flag := b
let enabled () = !enabled_flag

(* --- registry -------------------------------------------------------- *)

type counter = { c_name : string; mutable c_value : int }
type gauge = { g_name : string; mutable g_value : float }

(* Buckets are powers of two: bucket 0 holds values <= 0, bucket i >= 1
   holds values in [2^(i-1), 2^i). *)
type histogram = { h_name : string; h_buckets : int array }

let max_buckets = 63
let counters_tbl : (string, counter) Hashtbl.t = Hashtbl.create 64
let gauges_tbl : (string, gauge) Hashtbl.t = Hashtbl.create 16
let histograms_tbl : (string, histogram) Hashtbl.t = Hashtbl.create 16

let counter name =
  match Hashtbl.find_opt counters_tbl name with
  | Some c -> c
  | None ->
      let c = { c_name = name; c_value = 0 } in
      Hashtbl.add counters_tbl name c;
      c

let incr c = c.c_value <- c.c_value + 1
let add c n = c.c_value <- c.c_value + n
let value c = c.c_value
let counter_name c = c.c_name

let gauge name =
  match Hashtbl.find_opt gauges_tbl name with
  | Some g -> g
  | None ->
      let g = { g_name = name; g_value = 0.0 } in
      Hashtbl.add gauges_tbl name g;
      g

let set_gauge g v = g.g_value <- v
let add_gauge g v = g.g_value <- g.g_value +. v
let gauge_value g = g.g_value

let histogram name =
  match Hashtbl.find_opt histograms_tbl name with
  | Some h -> h
  | None ->
      let h = { h_name = name; h_buckets = Array.make max_buckets 0 } in
      Hashtbl.add histograms_tbl name h;
      h

let bucket_of v =
  if v <= 0 then 0
  else begin
    (* number of significant bits: 1 -> 1; 2,3 -> 2; 4..7 -> 3; ... *)
    let rec bits v acc = if v = 0 then acc else bits (v lsr 1) (acc + 1) in
    min (bits v 0) (max_buckets - 1)
  end

let observe h v = h.h_buckets.(bucket_of v) <- h.h_buckets.(bucket_of v) + 1
let bucket_lower i = if i = 0 then 0 else 1 lsl (i - 1)

let histogram_buckets h =
  let acc = ref [] in
  for i = max_buckets - 1 downto 0 do
    if h.h_buckets.(i) > 0 then acc := (bucket_lower i, h.h_buckets.(i)) :: !acc
  done;
  !acc

let by_name name_of tbl =
  Hashtbl.fold (fun _ v acc -> v :: acc) tbl []
  |> List.sort (fun a b -> compare (name_of a) (name_of b))

let counters () =
  by_name (fun c -> c.c_name) counters_tbl |> List.map (fun c -> (c.c_name, c.c_value))

let gauges () =
  by_name (fun g -> g.g_name) gauges_tbl |> List.map (fun g -> (g.g_name, g.g_value))

let histograms () =
  by_name (fun h -> h.h_name) histograms_tbl
  |> List.map (fun h -> (h.h_name, histogram_buckets h))

(* --- JSONL sink ------------------------------------------------------ *)

let jsonl : out_channel option ref = ref None

let jsonl_emit j =
  match !jsonl with
  | None -> ()
  | Some oc ->
      Json.output oc j;
      output_char oc '\n'

(* --- watched instruments --------------------------------------------- *)

(* Counters and gauges named here are sampled into the JSONL stream at
   every span completion ({"ev":"sample",...} lines), giving external
   viewers (the Chrome-trace export) a value-over-time track instead of
   only the final registry dump. *)

let watched_counters : counter list ref = ref []
let watched_gauges : gauge list ref = ref []

let watch_counter c =
  if not (List.memq c !watched_counters) then watched_counters := !watched_counters @ [ c ]

let watch_gauge g =
  if not (List.memq g !watched_gauges) then watched_gauges := !watched_gauges @ [ g ]

let emit_samples t =
  if !jsonl <> None then begin
    List.iter
      (fun c ->
        jsonl_emit
          (Json.Object
             [
               ("ev", Json.String "sample");
               ("t_s", Json.Float t);
               ("name", Json.String c.c_name);
               ("value", Json.Int c.c_value);
             ]))
      !watched_counters;
    List.iter
      (fun g ->
        jsonl_emit
          (Json.Object
             [
               ("ev", Json.String "sample");
               ("t_s", Json.Float t);
               ("name", Json.String g.g_name);
               ("value", Json.Float g.g_value);
             ]))
      !watched_gauges
  end

(* --- spans ----------------------------------------------------------- *)

type span_agg = { mutable a_count : int; mutable a_total : float; mutable a_max : float }

let spans_tbl : (string, span_agg) Hashtbl.t = Hashtbl.create 64
let span_stack : string list ref = ref []

type span_stat = {
  span_path : string;
  span_count : int;
  span_total_s : float;
  span_max_s : float;
}

let span_stats () =
  Hashtbl.fold
    (fun path a acc ->
      {
        span_path = path;
        span_count = a.a_count;
        span_total_s = a.a_total;
        span_max_s = a.a_max;
      }
      :: acc)
    spans_tbl []
  |> List.sort (fun a b -> compare a.span_path b.span_path)

let record_span ~path ~name ~depth ~start ~dur =
  let a =
    match Hashtbl.find_opt spans_tbl path with
    | Some a -> a
    | None ->
        let a = { a_count = 0; a_total = 0.0; a_max = 0.0 } in
        Hashtbl.add spans_tbl path a;
        a
  in
  a.a_count <- a.a_count + 1;
  a.a_total <- a.a_total +. dur;
  if dur > a.a_max then a.a_max <- dur;
  jsonl_emit
    (Json.Object
       [
         ("ev", Json.String "span");
         ("name", Json.String name);
         ("path", Json.String path);
         ("depth", Json.Int depth);
         ("start_s", Json.Float start);
         ("dur_s", Json.Float dur);
       ]);
  emit_samples (start +. dur)

let timed name f =
  if not !enabled_flag then begin
    let t = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t)
  end
  else begin
    let depth = List.length !span_stack in
    let path = match !span_stack with [] -> name | p :: _ -> p ^ "/" ^ name in
    span_stack := path :: !span_stack;
    let start = now_rel () in
    let finish () =
      (match !span_stack with _ :: rest -> span_stack := rest | [] -> ());
      let dur = now_rel () -. start in
      record_span ~path ~name ~depth ~start ~dur;
      dur
    in
    match f () with
    | v -> (v, finish ())
    | exception e ->
        ignore (finish ());
        raise e
  end

let span name f = if not !enabled_flag then f () else fst (timed name f)

(* --- lifecycle ------------------------------------------------------- *)

let reset () =
  Hashtbl.iter (fun _ c -> c.c_value <- 0) counters_tbl;
  Hashtbl.iter (fun _ g -> g.g_value <- 0.0) gauges_tbl;
  Hashtbl.iter (fun _ h -> Array.fill h.h_buckets 0 max_buckets 0) histograms_tbl;
  Hashtbl.reset spans_tbl;
  span_stack := []

let open_jsonl_file path =
  (match !jsonl with Some oc -> close_out oc | None -> ());
  let oc = open_out path in
  jsonl := Some oc;
  jsonl_emit
    (Json.Object
       [
         ("ev", Json.String "meta");
         ("schema", Json.String "olayout-telemetry/v1");
         ("unix_time", Json.Float (Unix.gettimeofday ()));
       ])

let close_jsonl () =
  match !jsonl with
  | None -> ()
  | Some oc ->
      (* Final registry dump so a JSONL stream is self-contained. *)
      List.iter
        (fun (n, v) ->
          jsonl_emit
            (Json.Object
               [ ("ev", Json.String "counter"); ("name", Json.String n); ("value", Json.Int v) ]))
        (counters ());
      List.iter
        (fun (n, v) ->
          jsonl_emit
            (Json.Object
               [ ("ev", Json.String "gauge"); ("name", Json.String n); ("value", Json.Float v) ]))
        (gauges ());
      List.iter
        (fun (n, buckets) ->
          jsonl_emit
            (Json.Object
               [
                 ("ev", Json.String "histogram");
                 ("name", Json.String n);
                 ( "buckets",
                   Json.Array
                     (List.map
                        (fun (lower, count) ->
                          Json.Object [ ("ge", Json.Int lower); ("count", Json.Int count) ])
                        buckets) );
               ]))
        (histograms ());
      List.iter
        (fun s ->
          jsonl_emit
            (Json.Object
               [
                 ("ev", Json.String "span_summary");
                 ("path", Json.String s.span_path);
                 ("count", Json.Int s.span_count);
                 ("total_s", Json.Float s.span_total_s);
                 ("max_s", Json.Float s.span_max_s);
               ]))
        (span_stats ());
      jsonl := None;
      close_out oc

(* --- console summary sink -------------------------------------------- *)

let pp_summary ppf () =
  let spans = span_stats () in
  Format.fprintf ppf "@.### telemetry summary@.";
  if spans <> [] then begin
    Format.fprintf ppf "%-52s %8s %10s %10s %10s@." "span" "count" "total s" "mean ms"
      "max ms";
    List.iter
      (fun s ->
        Format.fprintf ppf "%-52s %8d %10.3f %10.3f %10.3f@." s.span_path s.span_count
          s.span_total_s
          (1000.0 *. s.span_total_s /. float_of_int (max 1 s.span_count))
          (1000.0 *. s.span_max_s))
      spans
  end;
  let cs = counters () in
  if cs <> [] then begin
    Format.fprintf ppf "@.%-52s %20s@." "counter" "value";
    List.iter
      (fun (n, v) ->
        if v <> 0 then Format.fprintf ppf "%-52s %20d@." n v)
      cs
  end;
  let gs = gauges () in
  if gs <> [] then begin
    Format.fprintf ppf "@.%-52s %20s@." "gauge" "value";
    List.iter (fun (n, v) -> Format.fprintf ppf "%-52s %20.6g@." n v) gs
  end;
  List.iter
    (fun (n, buckets) ->
      if buckets <> [] then begin
        Format.fprintf ppf "@.histogram %s (bucket floor: count):@.  " n;
        List.iter (fun (lower, count) -> Format.fprintf ppf "%d:%d " lower count) buckets;
        Format.fprintf ppf "@."
      end)
    (histograms ())

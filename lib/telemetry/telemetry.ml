(* Process-wide instrumentation: hierarchical spans, a registry of
   counters/gauges/histograms, and pluggable sinks (JSONL event stream,
   console summary; the bench summary artifact lives in Bench_artifact).

   Design constraints (see telemetry.mli):
   - counters are plain mutable ints behind handles resolved once at module
     init, so hot paths (per fetch run, per cache access) pay one memory
     increment and nothing else on the serial path;
   - spans are coarse (per figure, per optimizer pass, per replay batch) and
     have a disabled path that is a direct tail call to the thunk;
   - under a Domain pool ({!set_parallel}), instruments written inside
     {!Isolated.capture} accumulate into a domain-local shadow registry
     (dense arrays indexed by handle id), merged into the global registry
     deterministically — in submission order, names sorted within each
     snapshot — so parallel runs reproduce serial counter values exactly. *)

let t0 = Unix.gettimeofday ()
let now_rel () = Unix.gettimeofday () -. t0

let enabled_flag = ref true
let set_enabled b = enabled_flag := b
let enabled () = !enabled_flag

(* --- registry -------------------------------------------------------- *)

type counter = { c_name : string; c_id : int; mutable c_value : int }
type gauge = { g_name : string; g_id : int; mutable g_value : float }

(* Buckets are powers of two: bucket 0 holds values <= 0, bucket i >= 1
   holds values in [2^(i-1), 2^i). *)
type histogram = { h_name : string; h_id : int; h_buckets : int array }

let max_buckets = 63
let counters_tbl : (string, counter) Hashtbl.t = Hashtbl.create 64
let gauges_tbl : (string, gauge) Hashtbl.t = Hashtbl.create 16
let histograms_tbl : (string, histogram) Hashtbl.t = Hashtbl.create 16

(* Guards every registry-table access (find-or-register, snapshot, merge).
   Handle *use* (incr/add/observe) never touches the tables, so the mutex
   is only taken at registration and reporting frequency, not per event. *)
let registry_mu = Mutex.create ()

let next_counter_id = ref 0
let next_gauge_id = ref 0
let next_histogram_id = ref 0

(* --- domain-local shadow registries ---------------------------------- *)

type span_agg = { mutable a_count : int; mutable a_total : float; mutable a_max : float }

(* A shadow accumulates every instrument write made inside one pool task.
   Counters/gauges/histograms are dense arrays indexed by handle id (O(1)
   on the worker hot path, no hashing); spans aggregate by path with the
   task's own stack seeded from the dispatcher; JSONL events are buffered
   and flushed at merge so the sink stays ordered. *)
type shadow = {
  mutable sc : int array;
  mutable sg_val : float array;
  mutable sg_set : bool array;
  mutable sh : int array array;
  s_spans : (string, span_agg) Hashtbl.t;
  mutable s_stack : string list;
  mutable s_events : Json.t list; (* reversed *)
  s_tl : Timeline.shadow; (* instruction-clock series, merged alongside *)
  s_pv : Provenance.shadow; (* layout-decision events, merged alongside *)
}

let make_shadow stack =
  {
    sc = [||];
    sg_val = [||];
    sg_set = [||];
    sh = [||];
    s_spans = Hashtbl.create 16;
    s_stack = stack;
    s_events = [];
    s_tl = Timeline.make_shadow ();
    s_pv = Provenance.make_shadow ();
  }

(* True only while a pool with worker domains is live; checked (one ref
   read) before the DLS lookup so the serial fast path is unchanged.
   Timeline and Provenance keep their own flags (each has its own DLS
   slot); flip all three here so producers of any kind see the same
   mode. *)
let par_mode = ref false

let set_parallel b =
  par_mode := b;
  Timeline.set_parallel b;
  Provenance.set_parallel b

let dls_slot : shadow option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let shadow () = if !par_mode then !(Domain.DLS.get dls_slot) else None
let in_isolated () = shadow () <> None

let grow_int a n =
  let b = Array.make (max n (2 * Array.length a)) 0 in
  Array.blit a 0 b 0 (Array.length a);
  b

let grow_float a n =
  let b = Array.make (max n (2 * Array.length a)) 0.0 in
  Array.blit a 0 b 0 (Array.length a);
  b

let grow_bool a n =
  let b = Array.make (max n (2 * Array.length a)) false in
  Array.blit a 0 b 0 (Array.length a);
  b

let grow_rows a n =
  let b = Array.make (max n (2 * Array.length a)) [||] in
  Array.blit a 0 b 0 (Array.length a);
  b

let shadow_add_counter s id n =
  if id >= Array.length s.sc then s.sc <- grow_int s.sc (id + 1);
  s.sc.(id) <- s.sc.(id) + n

let shadow_gauge_slot s id =
  if id >= Array.length s.sg_val then begin
    s.sg_val <- grow_float s.sg_val (id + 1);
    s.sg_set <- grow_bool s.sg_set (id + 1)
  end

let shadow_hist_row s id =
  if id >= Array.length s.sh then s.sh <- grow_rows s.sh (id + 1);
  if Array.length s.sh.(id) = 0 then s.sh.(id) <- Array.make max_buckets 0;
  s.sh.(id)

(* --- instruments ----------------------------------------------------- *)

let counter name =
  Mutex.protect registry_mu (fun () ->
      match Hashtbl.find_opt counters_tbl name with
      | Some c -> c
      | None ->
          let c = { c_name = name; c_id = !next_counter_id; c_value = 0 } in
          next_counter_id := !next_counter_id + 1;
          Hashtbl.add counters_tbl name c;
          c)

let incr c =
  match shadow () with
  | None -> c.c_value <- c.c_value + 1
  | Some s -> shadow_add_counter s c.c_id 1

let add c n =
  match shadow () with
  | None -> c.c_value <- c.c_value + n
  | Some s -> shadow_add_counter s c.c_id n

let value c = c.c_value
let counter_name c = c.c_name

let gauge name =
  Mutex.protect registry_mu (fun () ->
      match Hashtbl.find_opt gauges_tbl name with
      | Some g -> g
      | None ->
          let g = { g_name = name; g_id = !next_gauge_id; g_value = 0.0 } in
          next_gauge_id := !next_gauge_id + 1;
          Hashtbl.add gauges_tbl name g;
          g)

let set_gauge g v =
  match shadow () with
  | None -> g.g_value <- v
  | Some s ->
      shadow_gauge_slot s g.g_id;
      s.sg_val.(g.g_id) <- v;
      s.sg_set.(g.g_id) <- true

let add_gauge g v =
  match shadow () with
  | None -> g.g_value <- g.g_value +. v
  | Some s ->
      shadow_gauge_slot s g.g_id;
      s.sg_val.(g.g_id) <- s.sg_val.(g.g_id) +. v

let gauge_value g = g.g_value

let histogram name =
  Mutex.protect registry_mu (fun () ->
      match Hashtbl.find_opt histograms_tbl name with
      | Some h -> h
      | None ->
          let h =
            { h_name = name; h_id = !next_histogram_id; h_buckets = Array.make max_buckets 0 }
          in
          next_histogram_id := !next_histogram_id + 1;
          Hashtbl.add histograms_tbl name h;
          h)

let bucket_of v =
  if v <= 0 then 0
  else begin
    (* number of significant bits: 1 -> 1; 2,3 -> 2; 4..7 -> 3; ... *)
    let rec bits v acc = if v = 0 then acc else bits (v lsr 1) (acc + 1) in
    min (bits v 0) (max_buckets - 1)
  end

let observe h v =
  let b = bucket_of v in
  match shadow () with
  | None -> h.h_buckets.(b) <- h.h_buckets.(b) + 1
  | Some s ->
      let row = shadow_hist_row s h.h_id in
      row.(b) <- row.(b) + 1

let bucket_lower i = if i = 0 then 0 else 1 lsl (i - 1)

let histogram_buckets h =
  let acc = ref [] in
  for i = max_buckets - 1 downto 0 do
    if h.h_buckets.(i) > 0 then acc := (bucket_lower i, h.h_buckets.(i)) :: !acc
  done;
  !acc

let by_name name_of tbl =
  Mutex.protect registry_mu (fun () -> Hashtbl.fold (fun _ v acc -> v :: acc) tbl [])
  |> List.sort (fun a b -> compare (name_of a) (name_of b))

let counters () =
  by_name (fun c -> c.c_name) counters_tbl |> List.map (fun c -> (c.c_name, c.c_value))

let gauges () =
  by_name (fun g -> g.g_name) gauges_tbl |> List.map (fun g -> (g.g_name, g.g_value))

let histograms () =
  by_name (fun h -> h.h_name) histograms_tbl
  |> List.map (fun h -> (h.h_name, histogram_buckets h))

(* --- JSONL sink ------------------------------------------------------ *)

let jsonl : out_channel option ref = ref None
let jsonl_mu = Mutex.create ()

let jsonl_write j =
  match !jsonl with
  | None -> ()
  | Some oc ->
      Mutex.protect jsonl_mu (fun () ->
          Json.output oc j;
          output_char oc '\n')

(* Inside a pool task, events are buffered in the shadow and flushed (in
   order) when the snapshot is merged, so the sink sees one contiguous,
   deterministic block per task instead of interleaved domain writes. *)
let jsonl_emit j =
  if !jsonl <> None then
    match shadow () with
    | None -> jsonl_write j
    | Some s -> s.s_events <- j :: s.s_events

(* --- watched instruments --------------------------------------------- *)

(* Counters and gauges named here are sampled into the JSONL stream at
   every span completion ({"ev":"sample",...} lines), giving external
   viewers (the Chrome-trace export) a value-over-time track instead of
   only the final registry dump. *)

let watched_counters : counter list ref = ref []
let watched_gauges : gauge list ref = ref []

let watch_counter c =
  if not (List.memq c !watched_counters) then watched_counters := !watched_counters @ [ c ]

let watch_gauge g =
  if not (List.memq g !watched_gauges) then watched_gauges := !watched_gauges @ [ g ]

let emit_samples t =
  (* Samples read live global registry values; inside a pool task those are
     another domain's partial state, so sampling is main-domain-only. *)
  if !jsonl <> None && not (in_isolated ()) then begin
    List.iter
      (fun c ->
        jsonl_emit
          (Json.Object
             [
               ("ev", Json.String "sample");
               ("t_s", Json.Float t);
               ("name", Json.String c.c_name);
               ("value", Json.Int c.c_value);
             ]))
      !watched_counters;
    List.iter
      (fun g ->
        jsonl_emit
          (Json.Object
             [
               ("ev", Json.String "sample");
               ("t_s", Json.Float t);
               ("name", Json.String g.g_name);
               ("value", Json.Float g.g_value);
             ]))
      !watched_gauges
  end

(* --- spans ----------------------------------------------------------- *)

let spans_tbl : (string, span_agg) Hashtbl.t = Hashtbl.create 64
let span_stack : string list ref = ref []

let stack_get () = match shadow () with Some s -> s.s_stack | None -> !span_stack

let stack_set st =
  match shadow () with Some s -> s.s_stack <- st | None -> span_stack := st

type span_stat = {
  span_path : string;
  span_count : int;
  span_total_s : float;
  span_max_s : float;
}

let span_stats () =
  Mutex.protect registry_mu (fun () ->
      Hashtbl.fold
        (fun path a acc ->
          {
            span_path = path;
            span_count = a.a_count;
            span_total_s = a.a_total;
            span_max_s = a.a_max;
          }
          :: acc)
        spans_tbl [])
  |> List.sort (fun a b -> compare a.span_path b.span_path)

let agg_into tbl path dur =
  let a =
    match Hashtbl.find_opt tbl path with
    | Some a -> a
    | None ->
        let a = { a_count = 0; a_total = 0.0; a_max = 0.0 } in
        Hashtbl.add tbl path a;
        a
  in
  a.a_count <- a.a_count + 1;
  a.a_total <- a.a_total +. dur;
  if dur > a.a_max then a.a_max <- dur

let record_span ~path ~name ~depth ~start ~dur =
  (match shadow () with
  | None -> Mutex.protect registry_mu (fun () -> agg_into spans_tbl path dur)
  | Some s -> agg_into s.s_spans path dur);
  jsonl_emit
    (Json.Object
       [
         ("ev", Json.String "span");
         ("name", Json.String name);
         ("path", Json.String path);
         ("depth", Json.Int depth);
         ("start_s", Json.Float start);
         ("dur_s", Json.Float dur);
       ]);
  emit_samples (start +. dur)

let timed name f =
  if not !enabled_flag then begin
    let t = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t)
  end
  else begin
    let st = stack_get () in
    let depth = List.length st in
    let path = match st with [] -> name | p :: _ -> p ^ "/" ^ name in
    stack_set (path :: st);
    let start = now_rel () in
    let finish () =
      (match stack_get () with _ :: rest -> stack_set rest | [] -> ());
      let dur = now_rel () -. start in
      record_span ~path ~name ~depth ~start ~dur;
      dur
    in
    match f () with
    | v -> (v, finish ())
    | exception e ->
        ignore (finish ());
        raise e
  end

let span name f = if not !enabled_flag then f () else fst (timed name f)
let current_span_stack () = stack_get ()

(* --- isolated capture & deterministic merge -------------------------- *)

module Isolated = struct
  type snapshot = shadow

  let capture ~inherit_spans f =
    let slot = Domain.DLS.get dls_slot in
    let prev = !slot in
    let s = make_shadow inherit_spans in
    slot := Some s;
    let tl_prev = Timeline.Isolated.install s.s_tl in
    let pv_prev = Provenance.Isolated.install s.s_pv in
    let v =
      Fun.protect
        ~finally:(fun () ->
          Provenance.Isolated.restore pv_prev;
          Timeline.Isolated.restore tl_prev;
          slot := prev)
        f
    in
    (v, s)

  let sorted_handles name_of tbl =
    Hashtbl.fold (fun _ v acc -> v :: acc) tbl []
    |> List.sort (fun a b -> compare (name_of a) (name_of b))

  let merge (s : snapshot) =
    Mutex.protect registry_mu (fun () ->
        List.iter
          (fun c ->
            if c.c_id < Array.length s.sc && s.sc.(c.c_id) <> 0 then
              c.c_value <- c.c_value + s.sc.(c.c_id))
          (sorted_handles (fun c -> c.c_name) counters_tbl);
        List.iter
          (fun g ->
            if g.g_id < Array.length s.sg_val then begin
              if s.sg_set.(g.g_id) then g.g_value <- s.sg_val.(g.g_id)
              else if s.sg_val.(g.g_id) <> 0.0 then
                g.g_value <- g.g_value +. s.sg_val.(g.g_id)
            end)
          (sorted_handles (fun g -> g.g_name) gauges_tbl);
        List.iter
          (fun h ->
            if h.h_id < Array.length s.sh && Array.length s.sh.(h.h_id) > 0 then
              let row = s.sh.(h.h_id) in
              for i = 0 to max_buckets - 1 do
                h.h_buckets.(i) <- h.h_buckets.(i) + row.(i)
              done)
          (sorted_handles (fun h -> h.h_name) histograms_tbl);
        Hashtbl.fold (fun path a acc -> (path, a) :: acc) s.s_spans []
        |> List.sort (fun (p, _) (q, _) -> compare p q)
        |> List.iter (fun (path, a) ->
               let g =
                 match Hashtbl.find_opt spans_tbl path with
                 | Some g -> g
                 | None ->
                     let g = { a_count = 0; a_total = 0.0; a_max = 0.0 } in
                     Hashtbl.add spans_tbl path g;
                     g
               in
               g.a_count <- g.a_count + a.a_count;
               g.a_total <- g.a_total +. a.a_total;
               if a.a_max > g.a_max then g.a_max <- a.a_max));
    Timeline.Isolated.merge s.s_tl;
    Provenance.Isolated.merge s.s_pv;
    List.iter jsonl_write (List.rev s.s_events);
    s.s_events <- []

  let find_counter_id name =
    Mutex.protect registry_mu (fun () ->
        Option.map (fun c -> c.c_id) (Hashtbl.find_opt counters_tbl name))

  let find_gauge_id name =
    Mutex.protect registry_mu (fun () ->
        Option.map (fun g -> g.g_id) (Hashtbl.find_opt gauges_tbl name))

  let snap_counter s name =
    match find_counter_id name with
    | Some id when id < Array.length s.sc -> s.sc.(id)
    | _ -> 0

  let snap_gauge s name =
    match find_gauge_id name with
    | Some id when id < Array.length s.sg_val -> s.sg_val.(id)
    | _ -> 0.0
end

(* --- lifecycle ------------------------------------------------------- *)

let reset () =
  Mutex.protect registry_mu (fun () ->
      Hashtbl.iter (fun _ c -> c.c_value <- 0) counters_tbl;
      Hashtbl.iter (fun _ g -> g.g_value <- 0.0) gauges_tbl;
      Hashtbl.iter (fun _ h -> Array.fill h.h_buckets 0 max_buckets 0) histograms_tbl;
      Hashtbl.reset spans_tbl);
  span_stack := []

let open_jsonl_file path =
  (match !jsonl with Some oc -> close_out oc | None -> ());
  let oc = open_out path in
  jsonl := Some oc;
  jsonl_emit
    (Json.Object
       [
         ("ev", Json.String "meta");
         ("schema", Json.String "olayout-telemetry/v1");
         ("unix_time", Json.Float (Unix.gettimeofday ()));
       ])

let close_jsonl () =
  match !jsonl with
  | None -> ()
  | Some oc ->
      (* Watched instruments normally sample at span completion only, which
         leaves their value-over-time tracks ending at the last span — emit
         one final sample so the Chrome counter tracks cover the whole
         run. *)
      emit_samples (now_rel ());
      (* Instruction-clock series, ahead of the registry dump so readers
         that stop at the first counter event still see them. *)
      List.iter jsonl_emit (Timeline.events ());
      (* Layout-decision events (the Chrome-trace export renders the
         placement ones as per-procedure address-space spans). *)
      List.iter jsonl_emit (Provenance.events_json ());
      (* Final registry dump so a JSONL stream is self-contained. *)
      List.iter
        (fun (n, v) ->
          jsonl_emit
            (Json.Object
               [ ("ev", Json.String "counter"); ("name", Json.String n); ("value", Json.Int v) ]))
        (counters ());
      List.iter
        (fun (n, v) ->
          jsonl_emit
            (Json.Object
               [ ("ev", Json.String "gauge"); ("name", Json.String n); ("value", Json.Float v) ]))
        (gauges ());
      List.iter
        (fun (n, buckets) ->
          jsonl_emit
            (Json.Object
               [
                 ("ev", Json.String "histogram");
                 ("name", Json.String n);
                 ( "buckets",
                   Json.Array
                     (List.map
                        (fun (lower, count) ->
                          Json.Object [ ("ge", Json.Int lower); ("count", Json.Int count) ])
                        buckets) );
               ]))
        (histograms ());
      List.iter
        (fun s ->
          jsonl_emit
            (Json.Object
               [
                 ("ev", Json.String "span_summary");
                 ("path", Json.String s.span_path);
                 ("count", Json.Int s.span_count);
                 ("total_s", Json.Float s.span_total_s);
                 ("max_s", Json.Float s.span_max_s);
               ]))
        (span_stats ());
      jsonl := None;
      close_out oc

(* --- console summary sink -------------------------------------------- *)

let pp_summary ppf () =
  let spans = span_stats () in
  Format.fprintf ppf "@.### telemetry summary@.";
  if spans <> [] then begin
    Format.fprintf ppf "%-52s %8s %10s %10s %10s@." "span" "count" "total s" "mean ms"
      "max ms";
    List.iter
      (fun s ->
        Format.fprintf ppf "%-52s %8d %10.3f %10.3f %10.3f@." s.span_path s.span_count
          s.span_total_s
          (1000.0 *. s.span_total_s /. float_of_int (max 1 s.span_count))
          (1000.0 *. s.span_max_s))
      spans
  end;
  let cs = counters () in
  if cs <> [] then begin
    Format.fprintf ppf "@.%-52s %20s@." "counter" "value";
    List.iter
      (fun (n, v) ->
        if v <> 0 then Format.fprintf ppf "%-52s %20d@." n v)
      cs
  end;
  let gs = gauges () in
  if gs <> [] then begin
    Format.fprintf ppf "@.%-52s %20s@." "gauge" "value";
    List.iter (fun (n, v) -> Format.fprintf ppf "%-52s %20.6g@." n v) gs
  end;
  List.iter
    (fun (n, buckets) ->
      if buckets <> [] then begin
        Format.fprintf ppf "@.histogram %s (bucket floor: count):@.  " n;
        List.iter (fun (lower, count) -> Format.fprintf ppf "%d:%d " lower count) buckets;
        Format.fprintf ppf "@."
      end)
    (histograms ())

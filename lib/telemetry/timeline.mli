(** Windowed metric series over the {e simulated instruction clock}.

    Every aggregate in {!Telemetry} answers "how much, in total"; this
    module answers "when, along the trace".  A series divides the
    instruction stream into fixed-width windows and accumulates either
    counter deltas ({!Delta}: values are summed per window) or gauge
    samples ({!Sample}: last write wins; export carries the value forward
    through unwritten windows).  Positions are producer-local cumulative
    instruction counts — there is no global clock to synchronize — and
    because the instruction stream of a seeded workload is deterministic,
    the series are byte-identical at any [-j] and under either sweep
    engine (the CI legs [cmp] the artifacts).

    Parallel discipline mirrors {!Telemetry}: writes inside a pool task
    land in a domain-local shadow (installed and merged by
    [Telemetry.Isolated], never directly by producers or the pool), and
    merges happen in task-submission order, which also makes {!Sample}
    last-write-wins deterministic.

    The subsystem is {b off by default}; while disabled, {!add} and
    {!sample} return after one flag read, and instrumented producers are
    expected to skip their own bookkeeping too (checked once at
    construction time). *)

type kind =
  | Delta  (** per-window sums of integer deltas (misses, instructions) *)
  | Sample  (** per-window last-write-wins snapshots (working-set size) *)

val kind_name : kind -> string
(** ["delta"] / ["sample"] — the spelling used in artifacts and JSONL. *)

(** {1 Bare series}

    A single unregistered series with its own window width — the building
    block the registry wraps, also usable standalone (e.g.
    [Profile.Sampler]'s windowed sample counts). *)

module Series : sig
  type t

  val create : ?kind:kind -> window:int -> unit -> t
  (** @raise Invalid_argument when [window < 1]. *)

  val add : t -> pos:int -> int -> unit
  (** Accumulate a delta into the window containing [pos] (negative
      positions clamp to 0).  Zero deltas are skipped, so the window count
      reflects only positions where something happened. *)

  val sample : t -> pos:int -> int -> unit
  (** Record a snapshot value in the window containing [pos]. *)

  val window : t -> int
  val kind : t -> kind

  val windows : t -> int
  (** Number of windows in use (highest written index + 1; 0 when never
      written). *)

  val values : t -> int array
  (** Per-window values, length {!windows}.  [Delta]: raw sums, unwritten
      windows are 0.  [Sample]: the last written value carries forward
      through unwritten windows. *)

  val total : t -> int
  (** [Delta] only: sum of every delta ever added (0 for [Sample]). *)
end

(** {1 Registered series} *)

type series
(** A named series in the global registry.  Registration follows the
    {!Telemetry.counter} convention: find-or-register under a dotted name,
    the same name always yields the same handle ([kind] is fixed by the
    first registration). *)

val series : ?kind:kind -> string -> series
val series_name : series -> string
val series_kind : series -> kind

val add : series -> pos:int -> int -> unit
(** One flag read and return while the subsystem is disabled. *)

val sample : series -> pos:int -> int -> unit

(** {1 Configuration} *)

val set_enabled : bool -> unit
(** Default: disabled. *)

val enabled : unit -> bool
(** Producers check this once at construction and skip their position /
    delta bookkeeping entirely when false, keeping the disabled overhead
    at effectively zero. *)

val set_window : int -> unit
(** Set the window width (instructions) and clear every registered
    series' data.  Call before the instrumented run, never while a pool
    is live.
    @raise Invalid_argument when [< 1]. *)

val window : unit -> int
(** Current window width (default 65536). *)

val reset : unit -> unit
(** Clear every registered series' data; handles stay valid. *)

(** {1 Parallel capture}

    Driven exclusively by [Telemetry.Isolated]: [capture] installs a fresh
    timeline shadow alongside the telemetry one and [merge] folds it back
    in task-submission order.  Producers never call these. *)

val set_parallel : bool -> unit

type shadow

val make_shadow : unit -> shadow

module Isolated : sig
  val install : shadow -> shadow option
  (** Make [shadow] the domain's active timeline shadow; returns the
      previously active one for {!restore}. *)

  val restore : shadow option -> unit

  val merge : shadow -> unit
  (** Fold the shadow's rows into the global registry ([Delta] windows
      add, [Sample] windows overwrite) and clear it. *)
end

(** {1 Reporting} *)

type dump = {
  d_name : string;
  d_kind : kind;
  d_values : int array;
  d_total : int;  (** [Delta]: sum of deltas; [Sample]: final value *)
}

val dump : unit -> dump list
(** Every registered series (including never-written ones, whose
    [d_values] is empty), sorted by name. *)

val to_json : scale:string -> Json.t
(** The [olayout-timeline/v1] document.  Carries no timestamp or argv so
    two runs of the same seeded workload are byte-identical. *)

val write_artifact : path:string -> scale:string -> unit
(** Write {!to_json} (plus a trailing newline) to [path]. *)

val events : unit -> Json.t list
(** One [{"ev":"timeline",...}] JSONL event per non-empty series —
    appended to the telemetry JSONL stream at close so the Chrome-trace
    export can build instruction-clock counter tracks. *)

val pp_summary : Format.formatter -> unit -> unit
(** Console sparkline summary of every non-empty series. *)

val spark : kind -> int array -> string
(** Render per-window values as a UTF-8 sparkline (at most 60 glyphs;
    [Delta] buckets sum their windows, [Sample] buckets keep the peak).
    Exposed so other windowed reports (drift observatory) render
    consistently with {!pp_summary}. *)

(* Machine-readable run summary: the perf baseline artifact every
   optimisation PR diffs against (BENCH_<scale>.json).  Everything here is
   read back out of the telemetry registry except the per-figure numbers,
   which the report driver hands over explicitly (they are deltas around
   each figure, which only the driver can attribute). *)

type figure = {
  id : string;
  desc : string;
  seconds : float;
  runs_live : int;
  runs_replayed : int;
  instrs_live : int;
  instrs_replayed : int;
  live_executions : int;
  traces_replayed : int;
}

let schema = "olayout-bench/v1"

(* Figures with zero runs (or a zero-duration clock) omit the field
   entirely: a null would make every downstream consumer special-case a
   non-value, and standard JSON tooling treats absent and null
   differently.  The compare loader stays tolerant of old artifacts that
   still carry the null. *)
let mruns_per_s runs seconds =
  if seconds <= 0.0 || runs = 0 then None
  else Some (Json.Float (float_of_int runs /. seconds /. 1e6))

let opt_field name = function Some v -> [ (name, v) ] | None -> []

let figure_json f =
  Json.Object
    ([
       ("id", Json.String f.id);
       ("desc", Json.String f.desc);
       ("seconds", Json.Float f.seconds);
       ("runs_live", Json.Int f.runs_live);
       ("runs_replayed", Json.Int f.runs_replayed);
       ("instrs_live", Json.Int f.instrs_live);
       ("instrs_replayed", Json.Int f.instrs_replayed);
       ("live_executions", Json.Int f.live_executions);
       ("traces_replayed", Json.Int f.traces_replayed);
     ]
    @ opt_field "mruns_per_s" (mruns_per_s (f.runs_live + f.runs_replayed) f.seconds))

let gc_json () =
  let s = Gc.quick_stat () in
  Json.Object
    [
      ("minor_words", Json.Float s.Gc.minor_words);
      ("promoted_words", Json.Float s.Gc.promoted_words);
      ("major_words", Json.Float s.Gc.major_words);
      ("minor_collections", Json.Int s.Gc.minor_collections);
      ("major_collections", Json.Int s.Gc.major_collections);
      ("compactions", Json.Int s.Gc.compactions);
      ("heap_words", Json.Int s.Gc.heap_words);
      ("top_heap_words", Json.Int s.Gc.top_heap_words);
    ]

let counter_value name =
  match List.assoc_opt name (Telemetry.counters ()) with Some v -> v | None -> 0

let gauge_value name =
  match List.assoc_opt name (Telemetry.gauges ()) with Some v -> v | None -> 0.0

(* Optimizer pass timings, aggregated over every span path whose leaf is a
   pass name (passes run nested under different figures). *)
let pass_names =
  [ "optimize"; "chaining"; "splitting"; "hot_cold"; "pettis_hansen"; "placement"; "cfa" ]

let basename path =
  match String.rindex_opt path '/' with
  | Some i -> String.sub path (i + 1) (String.length path - i - 1)
  | None -> path

let passes_json () =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (s : Telemetry.span_stat) ->
      let leaf = basename s.Telemetry.span_path in
      if List.mem leaf pass_names then begin
        let count, total =
          match Hashtbl.find_opt tbl leaf with Some (c, t) -> (c, t) | None -> (0, 0.0)
        in
        Hashtbl.replace tbl leaf
          (count + s.Telemetry.span_count, total +. s.Telemetry.span_total_s)
      end)
    (Telemetry.span_stats ());
  Json.Array
    (List.filter_map
       (fun name ->
         match Hashtbl.find_opt tbl name with
         | Some (count, total) ->
             Some
               (Json.Object
                  [
                    ("pass", Json.String name);
                    ("count", Json.Int count);
                    ("total_s", Json.Float total);
                  ])
         | None -> None)
       pass_names)

(* Per-series timeline summaries (window width, window count, total) go
   through the baseline gate like any other deterministic metric; the full
   window arrays live in the dedicated TIMELINE artifact.  Absent entirely
   when the timeline subsystem is disabled, so baselines recorded without
   [--timeline-out] keep diffing clean. *)
let timeline_json () =
  if not (Timeline.enabled ()) then []
  else
    [
      ( "timeline",
        Json.Object
          [
            ("window_instrs", Json.Int (Timeline.window ()));
            ( "series",
              Json.Array
                (List.map
                   (fun (d : Timeline.dump) ->
                     Json.Object
                       [
                         ("name", Json.String d.Timeline.d_name);
                         ("kind", Json.String (Timeline.kind_name d.Timeline.d_kind));
                         ("windows", Json.Int (Array.length d.Timeline.d_values));
                         ("total", Json.Int d.Timeline.d_total);
                       ])
                   (Timeline.dump ())) );
          ] );
    ]

let json ~scale ~total_seconds ~trace_cache_bytes ~figures =
  let replayed_runs = counter_value "context.replayed_runs" in
  let replay_seconds = gauge_value "context.replay_seconds" in
  Json.Object
    ([
       ("schema", Json.String schema);
      ("scale", Json.String scale);
      ("generated_unix_time", Json.Float (Unix.time ()));
      ("argv", Json.Array (Array.to_list (Array.map (fun a -> Json.String a) Sys.argv)));
      ("total_seconds", Json.Float total_seconds);
      ("figures", Json.Array (List.map figure_json figures));
      ( "trace_cache",
        Json.Object
          ([
             ("bytes", Json.Int trace_cache_bytes);
             ("traces_recorded", Json.Int (counter_value "context.traces_recorded"));
             ("hits", Json.Int (counter_value "context.traces_replayed"));
             ("runs_replayed", Json.Int replayed_runs);
             ("instrs_replayed", Json.Int (counter_value "context.replayed_instrs"));
             ("replay_seconds", Json.Float replay_seconds);
           ]
          @ opt_field "replay_mruns_per_s" (mruns_per_s replayed_runs replay_seconds)) );
      ( "counters",
        Json.Object (List.map (fun (n, v) -> (n, Json.Int v)) (Telemetry.counters ())) );
      ( "gauges",
        Json.Object (List.map (fun (n, v) -> (n, Json.Float v)) (Telemetry.gauges ())) );
      ( "spans",
        Json.Array
          (List.map
             (fun (s : Telemetry.span_stat) ->
               Json.Object
                 [
                   ("path", Json.String s.Telemetry.span_path);
                   ("count", Json.Int s.Telemetry.span_count);
                   ("total_s", Json.Float s.Telemetry.span_total_s);
                   ("max_s", Json.Float s.Telemetry.span_max_s);
                 ])
             (Telemetry.span_stats ())) );
      ("passes", passes_json ());
      ("gc", gc_json ());
    ]
    @ timeline_json ())

let default_path ~scale = Printf.sprintf "BENCH_%s.json" scale

let write ~path ~scale ~total_seconds ~trace_cache_bytes ~figures =
  let oc = open_out path in
  Json.output oc (json ~scale ~total_seconds ~trace_cache_bytes ~figures);
  output_char oc '\n';
  close_out oc

(** Minimal JSON writer for the telemetry sinks (JSONL event stream and the
    bench summary artifact).  Writing only — the repository has no JSON
    dependency, and the sinks never need to read JSON back. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** non-finite floats are emitted as [null] *)
  | String of string
  | Array of t list
  | Object of (string * t) list

val escape_string : string -> string
(** [escape_string s] is [s] as a quoted JSON string literal, escaping
    quotes, backslashes and control characters. *)

val to_string : t -> string
(** Compact (single-line) rendering — one value per line is what makes the
    JSONL sink greppable. *)

val output : out_channel -> t -> unit

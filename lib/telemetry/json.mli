(** Minimal JSON codec for the telemetry sinks (JSONL event stream, the
    bench summary artifact) and the regression tooling that reads those
    artifacts back.  The repository has no JSON dependency: the writer is
    hand-rolled and the decoder below is the promoted version of the
    validating reader the test suite started with. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** non-finite floats are emitted as [null] *)
  | String of string
  | Array of t list
  | Object of (string * t) list

val escape_string : string -> string
(** [escape_string s] is [s] as a quoted JSON string literal, escaping
    quotes, backslashes and control characters. *)

val to_string : t -> string
(** Compact (single-line) rendering — one value per line is what makes the
    JSONL sink greppable. *)

val output : out_channel -> t -> unit

(** {1 Decoding} *)

exception Parse_error of string
(** Raised by {!parse} and {!parse_file} with a description and the byte
    offset of the failure (and the file path, for {!parse_file}). *)

val parse : string -> t
(** Strict parser for a single JSON value: rejects trailing garbage and
    unknown escapes.  Integral number lexemes (no fraction or exponent)
    decode as {!Int} — counters written by this module's writer round-trip
    exactly — everything else as {!Float}. *)

val parse_file : string -> t

(** {1 Accessors}

    Total functions returning [None] on shape mismatch; the regression
    loader layers descriptive schema errors on top. *)

val member : string -> t -> t option
(** Object field lookup ([None] on non-objects and missing keys). *)

val get_string : t -> string option
val get_int : t -> int option

val get_float : t -> float option
(** Accepts both {!Int} and {!Float}. *)

val get_list : t -> t list option
val get_fields : t -> (string * t) list option

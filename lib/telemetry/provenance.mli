(** Structured log of layout {e decisions}: what each optimizer pass chose
    for each procedure, and why.

    {!Telemetry} counters record aggregate outcomes; {!Timeline} records
    when they happened; this module records the decisions themselves — the
    edge weight that drove a Pettis–Hansen merge, the chains formed for a
    procedure, the hot/cold split point, the color a segment landed on and
    the final placement rank and address.  The explain layer joins these
    events with per-segment miss attribution into the per-procedure layout
    scorecard ([olayout explain], [bench --explain-out]).

    Events are keyed by a [subject] procedure id and carry a flat list of
    named fields.  The log preserves record order; under a Domain pool,
    events recorded inside a task buffer in a domain-local shadow (driven
    by [Telemetry.Isolated], never by producers) and merge in
    task-submission order, so the log — and every artifact derived from
    it — is byte-identical at any [-j].

    The subsystem is {b off by default}; while disabled, {!record}
    returns after one flag read, and instrumented passes are expected to
    check {!enabled} once and skip their field computation entirely. *)

type value = Int of int | Float of float | String of string

type event = {
  pv_pass : string;  (** pass name: ["chaining"], ["splitting"],
                         ["pettis_hansen"], ["temporal_order"],
                         ["coloring"], ["placement"] *)
  pv_subject : int;  (** procedure id the decision is about *)
  pv_fields : (string * value) list;
}

val record : pass:string -> subject:int -> (string * value) list -> unit
(** Append one decision event.  One flag read and return while the
    subsystem is disabled. *)

val set_enabled : bool -> unit
(** Default: disabled. *)

val enabled : unit -> bool
(** Passes check this once per invocation and skip decision bookkeeping
    entirely when false, keeping the disabled overhead at one ref read. *)

val reset : unit -> unit
(** Drop every recorded event (for a fresh capture). *)

val events : unit -> event list
(** Every recorded event, in record order (submission order under a
    pool). *)

(** {1 Field access} *)

val field : event -> string -> value option
val int_field : event -> string -> int option

val float_field : event -> string -> float option
(** [Int] fields coerce. *)

val string_field : event -> string -> string option

(** {1 Parallel capture}

    Driven exclusively by [Telemetry.Isolated]: [capture] installs a fresh
    provenance shadow alongside the telemetry one and [merge] appends its
    events in task-submission order.  Producers never call these. *)

val set_parallel : bool -> unit

type shadow

val make_shadow : unit -> shadow

module Isolated : sig
  val install : shadow -> shadow option
  (** Make [shadow] the domain's active provenance shadow; returns the
      previously active one for {!restore}. *)

  val restore : shadow option -> unit

  val merge : shadow -> unit
  (** Append the shadow's events to the global log and clear it. *)
end

(** {1 JSONL events} *)

val event_json : event -> Json.t

val events_json : unit -> Json.t list
(** One [{"ev":"provenance",...}] JSONL object per event — appended to the
    telemetry JSONL stream at close so the Chrome-trace export can render
    per-procedure placement spans. *)

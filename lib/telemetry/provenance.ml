(* Layout-decision provenance: a structured log of what each optimizer
   pass decided and why (which edge drove a Pettis-Hansen merge, where a
   procedure was split, which color a segment landed on, the final
   placement rank and address of every procedure).

   Counters answer "how much"; the timeline answers "when"; this log
   answers "why is this procedure placed here".  Events are keyed by the
   subject procedure id so the explain layer can join them with the
   per-segment miss attribution of lib/diag.

   The module mirrors Timeline's parallel discipline without depending on
   Telemetry (Telemetry drives this module, not the reverse): a
   one-ref-read [par_mode] check guards a [Domain.DLS] shadow lookup,
   events recorded inside a pool task buffer in a per-task shadow, and
   [Isolated.merge] appends them to the global log in task-submission
   order — called by [Telemetry.Isolated.merge] — so the event order (and
   hence the explain artifact) is byte-identical at any -j.

   The whole subsystem is off by default: [record] starts with a single
   flag check, and instrumented passes are expected to guard their own
   field computation behind [enabled ()] so the disabled path costs one
   ref read per pass, not per decision. *)

type value = Int of int | Float of float | String of string

type event = {
  pv_pass : string;
  pv_subject : int;
  pv_fields : (string * value) list;
}

let enabled_ref = ref false
let set_enabled b = enabled_ref := b
let enabled () = !enabled_ref

(* --- global log ------------------------------------------------------- *)

let mu = Mutex.create ()
let events_rev : event list ref = ref []

let reset () = Mutex.protect mu (fun () -> events_rev := [])

let events () = Mutex.protect mu (fun () -> List.rev !events_rev)

(* --- domain-local shadows -------------------------------------------- *)

let par_mode = ref false
let set_parallel b = par_mode := b

type shadow = { mutable sh_rev : event list }

let make_shadow () = { sh_rev = [] }

let dls_slot : shadow option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let active () = if !par_mode then !(Domain.DLS.get dls_slot) else None

let record ~pass ~subject fields =
  if !enabled_ref then begin
    let ev = { pv_pass = pass; pv_subject = subject; pv_fields = fields } in
    match active () with
    | None -> Mutex.protect mu (fun () -> events_rev := ev :: !events_rev)
    | Some sh -> sh.sh_rev <- ev :: sh.sh_rev
  end

module Isolated = struct
  let install sh =
    let slot = Domain.DLS.get dls_slot in
    let prev = !slot in
    slot := Some sh;
    prev

  let restore prev =
    let slot = Domain.DLS.get dls_slot in
    slot := prev

  let merge sh =
    (* Both lists are newest-first, so prepending the shadow's reversed
       buffer keeps the merged log in global-then-shadow chronological
       order.  Clearing makes an accidental re-merge a no-op. *)
    Mutex.protect mu (fun () -> events_rev := sh.sh_rev @ !events_rev);
    sh.sh_rev <- []
end

(* --- field access ------------------------------------------------------ *)

let field ev name = List.assoc_opt name ev.pv_fields

let int_field ev name =
  match field ev name with Some (Int i) -> Some i | _ -> None

let float_field ev name =
  match field ev name with
  | Some (Float f) -> Some f
  | Some (Int i) -> Some (float_of_int i)
  | _ -> None

let string_field ev name =
  match field ev name with Some (String s) -> Some s | _ -> None

(* --- JSONL events ------------------------------------------------------ *)

let value_json = function
  | Int i -> Json.Int i
  | Float f -> Json.Float f
  | String s -> Json.String s

let event_json ev =
  Json.Object
    [
      ("ev", Json.String "provenance");
      ("pass", Json.String ev.pv_pass);
      ("subject", Json.Int ev.pv_subject);
      ( "fields",
        Json.Object (List.map (fun (k, v) -> (k, value_json v)) ev.pv_fields) );
    ]

let events_json () = List.map event_json (events ())

(* Windowed time series over the simulated instruction clock.

   Unlike the wall-clock spans in Telemetry, a timeline series is keyed on
   *simulated instructions executed*, which is deterministic: the same
   seeded workload produces the same series byte-for-byte at any -j and
   under either sweep engine.  Producers attribute each delta or sample to
   the fixed-width window containing the position they pass in; positions
   are producer-local cumulative instruction counts, so a producer never
   needs a global clock.

   The module mirrors Telemetry's parallel discipline without depending on
   it (Telemetry drives this module, not the reverse): a one-ref-read
   [par_mode] check guards a [Domain.DLS] shadow lookup, writes inside a
   pool task land in per-task shadow rows, and [Isolated.merge] folds them
   into the global registry under the registry mutex — called by
   [Telemetry.Isolated.merge] in task-submission order, which makes Sample
   (last-write-wins) windows deterministic too.

   The whole subsystem is off by default: [add]/[sample] start with a
   single flag check and producers are expected to skip their bookkeeping
   (miss-counter reads, position arithmetic) entirely while disabled. *)

type kind = Delta | Sample

let kind_name = function Delta -> "delta" | Sample -> "sample"

(* --- bare series ------------------------------------------------------ *)

(* Also usable standalone (Profile.Sampler keeps a private windowed view);
   the registry below wraps one per named series. *)
module Series = struct
  type t = {
    s_window : int;
    s_kind : kind;
    mutable s_vals : int array;
    mutable s_set : bool array; (* window was written (Sample carry-forward) *)
    mutable s_n : int; (* windows in use: highest written index + 1 *)
    mutable s_total : int; (* Delta only: sum of all added deltas *)
  }

  let create ?(kind = Delta) ~window () =
    if window < 1 then
      invalid_arg "Timeline.Series.create: window must be >= 1 instruction";
    { s_window = window; s_kind = kind; s_vals = [||]; s_set = [||]; s_n = 0; s_total = 0 }

  let ensure s w =
    if w >= Array.length s.s_vals then begin
      let cap = max (w + 1) (max 16 (2 * Array.length s.s_vals)) in
      let v = Array.make cap 0 and b = Array.make cap false in
      Array.blit s.s_vals 0 v 0 s.s_n;
      Array.blit s.s_set 0 b 0 s.s_n;
      s.s_vals <- v;
      s.s_set <- b
    end

  let bump s w = if w + 1 > s.s_n then s.s_n <- w + 1
  let index s pos = (if pos < 0 then 0 else pos) / s.s_window

  (* Zero deltas are skipped so a series' window count depends only on the
     positions where something actually happened — the cross-engine
     byte-identity of the artifact relies on this. *)
  let add s ~pos n =
    if n <> 0 then begin
      let w = index s pos in
      ensure s w;
      s.s_vals.(w) <- s.s_vals.(w) + n;
      s.s_set.(w) <- true;
      s.s_total <- s.s_total + n;
      bump s w
    end

  let sample s ~pos v =
    let w = index s pos in
    ensure s w;
    s.s_vals.(w) <- v;
    s.s_set.(w) <- true;
    bump s w

  let window s = s.s_window
  let kind s = s.s_kind
  let windows s = s.s_n
  let total s = s.s_total

  (* Delta: raw per-window sums (never-written windows are 0).  Sample:
     the last written value carries forward through unwritten windows, so
     a gauge-like series (working-set size) reads as a step function. *)
  let values s =
    match s.s_kind with
    | Delta -> Array.sub s.s_vals 0 s.s_n
    | Sample ->
        let out = Array.make s.s_n 0 in
        let last = ref 0 in
        for w = 0 to s.s_n - 1 do
          if s.s_set.(w) then last := s.s_vals.(w);
          out.(w) <- !last
        done;
        out

  let merge_into dst row =
    for w = 0 to row.s_n - 1 do
      if row.s_set.(w) then begin
        ensure dst w;
        dst.s_set.(w) <- true;
        (match dst.s_kind with
        | Delta -> dst.s_vals.(w) <- dst.s_vals.(w) + row.s_vals.(w)
        | Sample -> dst.s_vals.(w) <- row.s_vals.(w));
        bump dst w
      end
    done;
    if dst.s_kind = Delta then dst.s_total <- dst.s_total + row.s_total
end

(* --- registry --------------------------------------------------------- *)

type series = {
  ts_name : string;
  ts_id : int;
  ts_kind : kind;
  mutable ts_data : Series.t; (* replaced wholesale by set_window/reset *)
}

let mu = Mutex.create ()
let tbl : (string, series) Hashtbl.t = Hashtbl.create 32
let by_id : series option array ref = ref (Array.make 32 None)
let next_id = ref 0

let default_window = 65536
let window_ref = ref default_window
let window () = !window_ref

let enabled_ref = ref false
let set_enabled b = enabled_ref := b
let enabled () = !enabled_ref

let series ?(kind = Delta) name =
  Mutex.protect mu (fun () ->
      match Hashtbl.find_opt tbl name with
      | Some s -> s
      | None ->
          let s =
            {
              ts_name = name;
              ts_id = !next_id;
              ts_kind = kind;
              ts_data = Series.create ~kind ~window:!window_ref ();
            }
          in
          next_id := !next_id + 1;
          Hashtbl.add tbl name s;
          if s.ts_id >= Array.length !by_id then begin
            let b = Array.make (2 * Array.length !by_id) None in
            Array.blit !by_id 0 b 0 (Array.length !by_id);
            by_id := b
          end;
          !by_id.(s.ts_id) <- Some s;
          s)

let series_name s = s.ts_name
let series_kind s = s.ts_kind

let clear_locked () =
  Hashtbl.iter
    (fun _ s -> s.ts_data <- Series.create ~kind:s.ts_kind ~window:!window_ref ())
    tbl

let set_window w =
  if w < 1 then invalid_arg "Timeline.set_window: window must be >= 1 instruction";
  Mutex.protect mu (fun () ->
      window_ref := w;
      clear_locked ())

let reset () = Mutex.protect mu (fun () -> clear_locked ())

(* --- domain-local shadows -------------------------------------------- *)

let par_mode = ref false
let set_parallel b = par_mode := b

type shadow = { mutable rows : Series.t option array }

let make_shadow () = { rows = [||] }

let dls_slot : shadow option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let active () = if !par_mode then !(Domain.DLS.get dls_slot) else None

let shadow_row sh (s : series) =
  if s.ts_id >= Array.length sh.rows then begin
    let b = Array.make (max (s.ts_id + 1) (max 8 (2 * Array.length sh.rows))) None in
    Array.blit sh.rows 0 b 0 (Array.length sh.rows);
    sh.rows <- b
  end;
  match sh.rows.(s.ts_id) with
  | Some r -> r
  | None ->
      let r =
        Series.create ~kind:s.ts_kind ~window:(Series.window s.ts_data) ()
      in
      sh.rows.(s.ts_id) <- Some r;
      r

let add s ~pos n =
  if !enabled_ref && n <> 0 then
    match active () with
    | None -> Series.add s.ts_data ~pos n
    | Some sh -> Series.add (shadow_row sh s) ~pos n

let sample s ~pos v =
  if !enabled_ref then
    match active () with
    | None -> Series.sample s.ts_data ~pos v
    | Some sh -> Series.sample (shadow_row sh s) ~pos v

module Isolated = struct
  let install sh =
    let slot = Domain.DLS.get dls_slot in
    let prev = !slot in
    slot := Some sh;
    prev

  let restore prev =
    let slot = Domain.DLS.get dls_slot in
    slot := prev

  let merge sh =
    Mutex.protect mu (fun () ->
        Array.iteri
          (fun id row ->
            match row with
            | None -> ()
            | Some row -> (
                match !by_id.(id) with
                | Some s -> Series.merge_into s.ts_data row
                | None -> ()))
          sh.rows);
    (* A snapshot merges at most once (Pool guarantees it); clearing makes
       an accidental re-merge a no-op instead of a double count. *)
    Array.fill sh.rows 0 (Array.length sh.rows) None
end

(* --- reporting -------------------------------------------------------- *)

type dump = {
  d_name : string;
  d_kind : kind;
  d_values : int array;
  d_total : int; (* Delta: sum of deltas; Sample: final value *)
}

let dump () =
  Mutex.protect mu (fun () -> Hashtbl.fold (fun _ s acc -> s :: acc) tbl [])
  |> List.sort (fun a b -> compare a.ts_name b.ts_name)
  |> List.map (fun s ->
         let values = Series.values s.ts_data in
         let total =
           match s.ts_kind with
           | Delta -> Series.total s.ts_data
           | Sample ->
               if Array.length values = 0 then 0
               else values.(Array.length values - 1)
         in
         { d_name = s.ts_name; d_kind = s.ts_kind; d_values = values; d_total = total })

let json_values values =
  Json.Array (Array.to_list (Array.map (fun v -> Json.Int v) values))

(* The document deliberately carries no timestamp or argv: two runs of the
   same seeded workload must produce byte-identical files (the CI legs
   [cmp] them across -j and across engines). *)
let to_json ~scale =
  Json.Object
    [
      ("schema", Json.String "olayout-timeline/v1");
      ("scale", Json.String scale);
      ("window_instrs", Json.Int !window_ref);
      ( "series",
        Json.Array
          (List.map
             (fun d ->
               Json.Object
                 [
                   ("name", Json.String d.d_name);
                   ("kind", Json.String (kind_name d.d_kind));
                   ("windows", Json.Int (Array.length d.d_values));
                   ("total", Json.Int d.d_total);
                   ("values", json_values d.d_values);
                 ])
             (dump ())) );
    ]

let write_artifact ~path ~scale =
  let oc = open_out path in
  Json.output oc (to_json ~scale);
  output_char oc '\n';
  close_out oc

let events () =
  dump ()
  |> List.filter (fun d -> Array.length d.d_values > 0)
  |> List.map (fun d ->
         Json.Object
           [
             ("ev", Json.String "timeline");
             ("name", Json.String d.d_name);
             ("kind", Json.String (kind_name d.d_kind));
             ("window_instrs", Json.Int !window_ref);
             ("values", json_values d.d_values);
           ])

(* --- console sparklines ----------------------------------------------- *)

(* Rendering lives in Olayout_util.Console (shared with the drift heatmap
   and the relayout tables); this wrapper only maps the series kind to the
   resampling rule: Delta buckets sum their windows (total work in the
   bucket's span), Sample buckets take the max (peaks survive
   downsampling). *)
let spark kind values =
  Olayout_util.Console.spark
    (match kind with Delta -> `Sum | Sample -> `Max)
    values

let pp_summary ppf () =
  let ds = List.filter (fun d -> Array.length d.d_values > 0) (dump ()) in
  if ds <> [] then begin
    Format.fprintf ppf "@.### phase timeline (window = %d instrs)@." !window_ref;
    Format.fprintf ppf "%-36s %7s %12s  %s@." "series" "windows" "total" "";
    List.iter
      (fun d ->
        Format.fprintf ppf "%-36s %7d %12d  %s@." d.d_name (Array.length d.d_values)
          d.d_total
          (spark d.d_kind d.d_values))
      ds
  end

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Array of t list
  | Object of (string * t) list

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  add_escaped buf s;
  Buffer.contents buf

(* Floats must stay parseable: non-finite values have no JSON encoding and
   become null. *)
let add_float buf f =
  match Float.classify_float f with
  | FP_nan | FP_infinite -> Buffer.add_string buf "null"
  | _ -> Buffer.add_string buf (Printf.sprintf "%.12g" f)

let rec add buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> add_float buf f
  | String s -> add_escaped buf s
  | Array items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          add buf item)
        items;
      Buffer.add_char buf ']'
  | Object fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          add_escaped buf k;
          Buffer.add_char buf ':';
          add buf v)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  add buf j;
  Buffer.contents buf

let output oc j = Stdlib.output_string oc (to_string j)

(* --- decoder ---------------------------------------------------------- *)

(* Started as the validating reader in test/helpers.ml; promoted here once
   the regression tooling needed to read artifacts back in production code.
   Strict (no trailing garbage, no unknown escapes) with positional
   errors - a truncated or hand-edited artifact should say where it
   broke, not produce a half-parsed document. *)

exception Parse_error of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if peek () = Some c then advance () else fail (Printf.sprintf "expected %C" c)
  in
  let literal lit v =
    if !pos + String.length lit <= n && String.sub s !pos (String.length lit) = lit
    then begin
      pos := !pos + String.length lit;
      v
    end
    else fail (Printf.sprintf "bad literal (expected %s)" lit)
  in
  let utf8_of_code buf u =
    if u < 0x80 then Buffer.add_char buf (Char.chr u)
    else if u < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance ()
          | Some '/' -> Buffer.add_char buf '/'; advance ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance ()
          | Some 't' -> Buffer.add_char buf '\t'; advance ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance ()
          | Some 'b' -> Buffer.add_char buf '\b'; advance ()
          | Some 'f' -> Buffer.add_char buf '\012'; advance ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              let u =
                try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
              in
              utf8_of_code buf u
          | _ -> fail "bad escape");
          go ()
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  (* Integral lexemes (no fraction, no exponent) decode as Int so that
     counters survive a write/parse round trip exactly; everything else is
     Float. *)
  let parse_number () =
    let start = !pos in
    let integral = ref true in
    while
      !pos < n
      && (match s.[!pos] with
         | '0' .. '9' | '-' | '+' -> true
         | '.' | 'e' | 'E' ->
             integral := false;
             true
         | _ -> false)
    do
      advance ()
    done;
    let lexeme = String.sub s start (!pos - start) in
    if !integral then
      match int_of_string_opt lexeme with
      | Some i -> Int i
      | None -> (
          (* out of int range: fall back to float *)
          match float_of_string_opt lexeme with
          | Some f -> Float f
          | None -> fail (Printf.sprintf "bad number %S" lexeme))
    else
      match float_of_string_opt lexeme with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" lexeme)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Object [] end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ((k, v) :: acc)
            | Some '}' -> advance (); Object (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); Array [] end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements (v :: acc)
            | Some ']' -> advance (); Array (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elements []
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
    | None -> fail "empty input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse_file path =
  let ic =
    try open_in_bin path
    with Sys_error msg -> raise (Parse_error (Printf.sprintf "cannot open %s: %s" path msg))
  in
  let raw =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  try parse raw
  with Parse_error msg -> raise (Parse_error (Printf.sprintf "%s: %s" path msg))

(* --- accessors -------------------------------------------------------- *)

let member key = function Object fields -> List.assoc_opt key fields | _ -> None
let get_string = function String s -> Some s | _ -> None
let get_int = function Int i -> Some i | _ -> None

let get_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let get_list = function Array items -> Some items | _ -> None
let get_fields = function Object fields -> Some fields | _ -> None

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Array of t list
  | Object of (string * t) list

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  add_escaped buf s;
  Buffer.contents buf

(* Floats must stay parseable: non-finite values have no JSON encoding and
   become null. *)
let add_float buf f =
  match Float.classify_float f with
  | FP_nan | FP_infinite -> Buffer.add_string buf "null"
  | _ -> Buffer.add_string buf (Printf.sprintf "%.12g" f)

let rec add buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> add_float buf f
  | String s -> add_escaped buf s
  | Array items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          add buf item)
        items;
      Buffer.add_char buf ']'
  | Object fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          add_escaped buf k;
          Buffer.add_char buf ':';
          add buf v)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  add buf j;
  Buffer.contents buf

let output oc j = Stdlib.output_string oc (to_string j)

(** The machine-readable bench summary ([BENCH_<scale>.json]): per-figure
    wall seconds and simulated/replayed run counts, trace-cache statistics,
    the full counter/gauge registry, span aggregates, optimizer pass
    timings and GC statistics ([Gc.quick_stat]).  This is the perf baseline
    artifact subsequent optimisation PRs diff against. *)

type figure = {
  id : string;
  desc : string;
  seconds : float;  (** wall-clock for the whole figure *)
  runs_live : int;  (** fetch runs simulated live during the figure *)
  runs_replayed : int;  (** fetch runs served from the trace cache *)
  instrs_live : int;
  instrs_replayed : int;
  live_executions : int;  (** full OLTP server walks *)
  traces_replayed : int;
}

val default_path : scale:string -> string
(** [BENCH_<scale>.json]. *)

val json :
  scale:string ->
  total_seconds:float ->
  trace_cache_bytes:int ->
  figures:figure list ->
  Json.t
(** Build the artifact from the figure records plus the current telemetry
    registry and GC state. *)

val write :
  path:string ->
  scale:string ->
  total_seconds:float ->
  trace_cache_bytes:int ->
  figures:figure list ->
  unit

module Icache = Olayout_cachesim.Icache
module Run = Olayout_exec.Run
module Timeline = Olayout_telemetry.Timeline

type config = {
  l1i : Icache.config;
  l1d_size_bytes : int;
  l1d_line : int;
  l1d_assoc : int;
  l2_size_bytes : int;
  l2_line : int;
  l2_assoc : int;
  itlb_entries : int;
}

let simos_base =
  {
    l1i = Icache.config ~name:"simos-l1i" ~size_kb:64 ~line:64 ~assoc:2 ();
    l1d_size_bytes = 64 * 1024;
    l1d_line = 64;
    l1d_assoc = 2;
    l2_size_bytes = 1536 * 1024;
    l2_line = 64;
    l2_assoc = 6;
    itlb_entries = 64;
  }

(* Instruction-clock series over the fetch path, polled around each fetched
   run (no hot-path edits inside Itlb/Icache/Cache themselves). *)
type tl = {
  tl_itlb : Timeline.series;
  tl_l1i : Timeline.series;
  tl_l2i : Timeline.series;
  mutable tl_pos : int;
}

type t = { l1i : Icache.t; l1d : Cache.t; l2 : Cache.t; itlb : Itlb.t; tl : tl option }

let create ?timeline cfg =
  let l2 =
    Cache.create ~name:"l2" ~size_bytes:cfg.l2_size_bytes ~line_bytes:cfg.l2_line
      ~assoc:cfg.l2_assoc ()
  in
  (* The unified L2 is physically indexed; L1s are virtually indexed. *)
  let l1i =
    Icache.create
      ~on_miss:(fun addr _owner -> Cache.access l2 ~kind:Cache.Instr (Phys.translate addr))
      cfg.l1i
  in
  let l1d =
    Cache.create
      ~on_miss:(fun addr -> Cache.access l2 ~kind:Cache.Data (Phys.translate addr))
      ~name:"l1d" ~size_bytes:cfg.l1d_size_bytes ~line_bytes:cfg.l1d_line
      ~assoc:cfg.l1d_assoc ()
  in
  let itlb = Itlb.create ~entries:cfg.itlb_entries () in
  let tl =
    match timeline with
    | Some prefix when Timeline.enabled () ->
        Some
          {
            tl_itlb = Timeline.series (Printf.sprintf "memsim.%s.itlb_misses" prefix);
            tl_l1i = Timeline.series (Printf.sprintf "memsim.%s.l1i_misses" prefix);
            tl_l2i = Timeline.series (Printf.sprintf "memsim.%s.l2i_misses" prefix);
            tl_pos = 0;
          }
    | _ -> None
  in
  { l1i; l1d; l2; itlb; tl }

let fetch_run t run =
  match t.tl with
  | None ->
      Itlb.access_run t.itlb run;
      Icache.access_run t.l1i run
  | Some tl ->
      let itlb0 = Itlb.misses t.itlb
      and l1i0 = Icache.misses t.l1i
      and l2i0 = Cache.misses_kind t.l2 Cache.Instr in
      Itlb.access_run t.itlb run;
      Icache.access_run t.l1i run;
      let pos = tl.tl_pos in
      Timeline.add tl.tl_itlb ~pos (Itlb.misses t.itlb - itlb0);
      Timeline.add tl.tl_l1i ~pos (Icache.misses t.l1i - l1i0);
      Timeline.add tl.tl_l2i ~pos (Cache.misses_kind t.l2 Cache.Instr - l2i0);
      tl.tl_pos <- pos + run.Run.len

let data_access t addr = Cache.access t.l1d ~kind:Cache.Data addr

let l1i t = t.l1i
let itlb t = t.itlb
let l1d_misses t = Cache.misses t.l1d
let l2_instr_misses t = Cache.misses_kind t.l2 Cache.Instr
let l2_data_misses t = Cache.misses_kind t.l2 Cache.Data
let l2_misses t = Cache.misses t.l2
let l1i_misses t = Icache.misses t.l1i
let itlb_misses t = Itlb.misses t.itlb

(** A two-level memory hierarchy: split L1 I/D caches, an iTLB and a unified
    L2, wired so L1 misses feed the L2 — the simulated machine of the
    paper's base SimOS-Alpha configuration (§3.3) used for Figure 14 and for
    the execution-time model.

    Instruction fetches arrive as runs (from the executor); data references
    arrive as single addresses (from the workload's data-reference
    generator).  Because the L2 is unified, better instruction packing
    reduces data misses too — the paper's "less intuitive" Figure 14
    observation — and this emerges here with no special handling. *)

type config = {
  l1i : Olayout_cachesim.Icache.config;
  l1d_size_bytes : int;
  l1d_line : int;
  l1d_assoc : int;
  l2_size_bytes : int;
  l2_line : int;
  l2_assoc : int;
  itlb_entries : int;
}

val simos_base : config
(** The paper's simulated machine: 64 KB 2-way split L1s (64-byte lines),
    1.5 MB 6-way unified L2 (64-byte lines), 64-entry iTLB. *)

type t

val create : ?timeline:string -> config -> t
(** [~timeline:prefix] (effective only while [Olayout_telemetry.Timeline]
    is enabled) emits per-window fetch-path miss series keyed on the
    cumulative fetched-instruction count: [memsim.<prefix>.itlb_misses],
    [memsim.<prefix>.l1i_misses] and [memsim.<prefix>.l2i_misses]. *)

val fetch_run : t -> Olayout_exec.Run.t -> unit
(** Instruction fetch: touches the iTLB and L1I; L1I misses access the L2
    with the instruction kind. *)

val data_access : t -> int -> unit
(** Data reference: touches L1D; misses access the L2 with the data kind. *)

val l1i : t -> Olayout_cachesim.Icache.t
val itlb : t -> Itlb.t
val l1d_misses : t -> int
val l2_instr_misses : t -> int
val l2_data_misses : t -> int
val l2_misses : t -> int
val l1i_misses : t -> int
val itlb_misses : t -> int

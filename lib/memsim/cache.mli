(** Generic set-associative LRU cache over single byte addresses.

    Used for the L1 data cache, the unified L2 and the board-level cache in
    the Figure 14 and in-text experiments.  Accesses are classified by
    {!kind} purely for statistics; all kinds share the same storage — which
    is what makes the paper's L2 observation emerge: packing the code
    better means instruction lines displace fewer data lines. *)

type kind = Instr | Data
(** Statistics class of an access.  [Instr] covers L1I-miss refills reaching
    a unified level; [Data] covers data references ([Data] is also the
    convention for untyped streams such as the board cache). *)

type t

val create :
  ?on_miss:(int -> unit) ->
  ?on_evict:(evictor:int -> victim:int -> unit) ->
  name:string ->
  size_bytes:int ->
  line_bytes:int ->
  assoc:int ->
  unit ->
  t
(** [on_miss] fires with the missing byte address on every miss.
    [on_evict] mirrors {!Olayout_cachesim.Icache.create}'s hook: it fires
    on every replacement of a valid line with the byte addresses of the
    incoming ([evictor]) and outgoing ([victim]) lines, so the diagnostics
    layer can attribute L2 conflicts the same way it does L1I ones. *)

val access : t -> kind:kind -> int -> unit
(** [access t ~kind addr] looks up the line containing [addr]. *)

val name : t -> string
val accesses : t -> int
val misses : t -> int
val misses_kind : t -> kind -> int
val accesses_kind : t -> kind -> int

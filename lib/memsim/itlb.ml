module Run = Olayout_exec.Run
module Telemetry = Olayout_telemetry.Telemetry

let c_accesses = Telemetry.counter "memsim.itlb_accesses"
let c_misses = Telemetry.counter "memsim.itlb_misses"

type t = {
  page_shift : int;
  entries : int;
  pages : int array;     (* entry -> page number; -1 empty *)
  last_use : int array;
  seen : (int, unit) Hashtbl.t;
  mutable clock : int;
  mutable misses : int;
  mutable last_page : int;   (* fast path: consecutive fetches on one page *)
  mutable last_entry : int;  (* entry holding last_page *)
}

let log2 n =
  let rec go n acc = if n <= 1 then acc else go (n lsr 1) (acc + 1) in
  go n 0

let create ?(page_bytes = 8192) ~entries () =
  if entries < 1 then invalid_arg "Itlb.create: entries must be >= 1";
  if page_bytes land (page_bytes - 1) <> 0 then
    invalid_arg "Itlb.create: page size must be a power of two";
  {
    page_shift = log2 page_bytes;
    entries;
    pages = Array.make entries (-1);
    last_use = Array.make entries 0;
    seen = Hashtbl.create 256;
    clock = 0;
    misses = 0;
    last_page = -1;
    last_entry = -1;
  }

let touch t page =
  t.clock <- t.clock + 1;
  Telemetry.incr c_accesses;
  if page = t.last_page then t.last_use.(t.last_entry) <- t.clock
  else begin
    let hit = ref (-1) in
    for i = 0 to t.entries - 1 do
      if t.pages.(i) = page then hit := i
    done;
    let entry =
      if !hit >= 0 then begin
        t.last_use.(!hit) <- t.clock;
        !hit
      end
      else begin
        t.misses <- t.misses + 1;
        Telemetry.incr c_misses;
        if not (Hashtbl.mem t.seen page) then Hashtbl.add t.seen page ();
        let victim = ref 0 in
        for i = 1 to t.entries - 1 do
          if t.pages.(i) = -1 && t.pages.(!victim) <> -1 then victim := i
          else if
            t.pages.(i) <> -1 && t.pages.(!victim) <> -1
            && t.last_use.(i) < t.last_use.(!victim)
          then victim := i
        done;
        t.pages.(!victim) <- page;
        t.last_use.(!victim) <- t.clock;
        !victim
      end
    in
    t.last_page <- page;
    t.last_entry <- entry
  end

let access_run t (r : Run.t) =
  let first = r.addr lsr t.page_shift
  and last = (r.addr + (r.len * 4) - 1) lsr t.page_shift in
  for page = first to last do
    touch t page
  done

let accesses t = t.clock
let misses t = t.misses
let unique_pages t = Hashtbl.length t.seen

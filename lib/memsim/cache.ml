module Telemetry = Olayout_telemetry.Telemetry

let c_accesses = Telemetry.counter "memsim.cache_accesses"
let c_misses = Telemetry.counter "memsim.cache_misses"

type kind = Instr | Data

let kind_code = function Instr -> 0 | Data -> 1

type t = {
  name : string;
  assoc : int;
  line_shift : int;
  set_mask : int;
  tags : int array;
  last_use : int array;
  on_miss : (int -> unit) option;
  on_evict : (evictor:int -> victim:int -> unit) option;
  mutable clock : int;
  mutable misses : int;
  acc_kind : int array;
  miss_kind : int array;
}

let log2 n =
  let rec go n acc = if n <= 1 then acc else go (n lsr 1) (acc + 1) in
  go n 0

let create ?on_miss ?on_evict ~name ~size_bytes ~line_bytes ~assoc () =
  (* [0 land -1 = 0] would pass the power-of-two test below and then divide
     by zero computing the set count; reject non-positive sizes first. *)
  if line_bytes <= 0 then invalid_arg "Cache.create: line size must be positive";
  if size_bytes <= 0 then invalid_arg "Cache.create: cache size must be positive";
  if line_bytes land (line_bytes - 1) <> 0 then
    invalid_arg "Cache.create: line must be a power of two";
  if assoc < 1 || size_bytes < line_bytes * assoc then
    invalid_arg "Cache.create: bad associativity";
  if size_bytes mod (line_bytes * assoc) <> 0 then
    invalid_arg "Cache.create: size not a multiple of line*assoc";
  let n_sets = size_bytes / (line_bytes * assoc) in
  if n_sets land (n_sets - 1) <> 0 then
    invalid_arg "Cache.create: set count must be a power of two";
  {
    name;
    assoc;
    line_shift = log2 line_bytes;
    set_mask = n_sets - 1;
    tags = Array.make (n_sets * assoc) (-1);
    last_use = Array.make (n_sets * assoc) 0;
    on_miss;
    on_evict;
    clock = 0;
    misses = 0;
    acc_kind = Array.make 2 0;
    miss_kind = Array.make 2 0;
  }

let access t ~kind addr =
  let kind = kind_code kind in
  t.clock <- t.clock + 1;
  Telemetry.incr c_accesses;
  t.acc_kind.(kind) <- t.acc_kind.(kind) + 1;
  let line = addr lsr t.line_shift in
  let set = line land t.set_mask in
  let base = set * t.assoc in
  let way = ref (-1) in
  for i = 0 to t.assoc - 1 do
    if t.tags.(base + i) = line then way := i
  done;
  if !way >= 0 then t.last_use.(base + !way) <- t.clock
  else begin
    t.misses <- t.misses + 1;
    Telemetry.incr c_misses;
    t.miss_kind.(kind) <- t.miss_kind.(kind) + 1;
    (match t.on_miss with Some f -> f addr | None -> ());
    let victim = ref 0 in
    for i = 0 to t.assoc - 1 do
      if t.tags.(base + i) = -1 && t.tags.(base + !victim) <> -1 then victim := i
      else if
        t.tags.(base + i) <> -1 && t.tags.(base + !victim) <> -1
        && t.last_use.(base + i) < t.last_use.(base + !victim)
      then victim := i
    done;
    let old = t.tags.(base + !victim) in
    if old <> -1 then
      (match t.on_evict with
      | Some f -> f ~evictor:(line lsl t.line_shift) ~victim:(old lsl t.line_shift)
      | None -> ());
    t.tags.(base + !victim) <- line;
    t.last_use.(base + !victim) <- t.clock
  end

let name t = t.name
let accesses t = t.clock
let misses t = t.misses
let misses_kind t k = t.miss_kind.(kind_code k)
let accesses_kind t k = t.acc_kind.(kind_code k)

(** Baseline diff engine over flattened artifacts ({!Artifact}).

    Every aligned metric is classified:

    - {b deterministic} — simulation counters, run/instruction
      attribution, trace-cache footprint, [fig.*]/[fidelity.*] gauges,
      span and pass counts, diag classification totals.  The pipeline is
      seeded and integer-only, so these are gated with {e exact}
      equality: any drift is a behaviour change.
    - {b timing} — wall seconds, throughput ([mruns_per_s]), GC
      statistics, span durations.  Compared with a relative tolerance
      and warn-only by default.

    Metrics present on only one side report as added/removed (warn-only:
    schemas grow).  Identity fields ([scale], the argv flag set) are
    compared separately and only ever warn. *)

type klass = Deterministic | Timing

type status =
  | Equal  (** deterministic and identical *)
  | Drift  (** deterministic and different: gate-worthy *)
  | Within_tolerance
  | Exceeds_tolerance
  | Added  (** present only in the new artifact *)
  | Removed  (** present only in the old artifact *)

type entry = {
  e_path : string;
  e_class : klass;
  e_old : float option;
  e_new : float option;
  e_status : status;
}

type t = {
  tolerance : float;
  old_art : Artifact.t;
  new_art : Artifact.t;
  entries : entry list;  (** every aligned metric, sorted by path *)
  identity_warnings : string list;
  ignored_prefixes : string list;  (** as passed to {!compare_artifacts} *)
  ignored : int;  (** metric paths dropped by the prefixes, both sides *)
}

val default_tolerance : float
(** 0.25 (25% relative). *)

val classify : string -> klass
(** Classification by metric path (first dot-segment plus leaf suffix). *)

val compare_artifacts :
  ?tolerance:float ->
  ?ignore_prefixes:string list ->
  old_art:Artifact.t ->
  new_art:Artifact.t ->
  unit ->
  t
(** [ignore_prefixes] drops metric paths starting with any of the given
    prefixes from both sides before alignment — for comparisons where a
    metric family legitimately differs (e.g. [counters.cachesim.] between
    the two battery engines) while everything else must still gate.
    Raises {!Artifact.Load_error} when the two artifacts have different
    schemas (a bench run cannot be diffed against a diag run). *)

val gate_failures : ?timing:bool -> t -> entry list
(** The entries that fail a [--gate] run: deterministic {!Drift}, plus
    {!Exceeds_tolerance} when [timing] is set. *)

val schema : string
(** ["olayout-compare/v1"]. *)

val to_json :
  ?fidelity:Fidelity.report -> ?gated:bool -> ?gate_failed:bool -> t ->
  Olayout_telemetry.Json.t
(** The [olayout-compare/v1] document: identity of both sides, summary
    counts, every non-matching metric, and (when given) the fidelity
    scoreboard of the new run. *)

val pp : Format.formatter -> t -> unit
(** Aligned console table of the non-matching metrics plus a summary
    line. *)

(* The baseline-diffing engine: align two flattened artifacts and classify
   every metric as deterministic (simulation counters, run/instr
   attribution, fidelity gauges - gated with exact equality: the
   simulator is seeded and integer-only, so any drift is a code change)
   or timing (wall seconds, throughput, GC activity - compared with a
   relative tolerance and warn-only by default: they measure the machine
   as much as the code).

   Artifact identity (scale, argv) is compared separately and only ever
   warns: comparing a --quick run against a full run is suspicious but
   sometimes exactly what the user asked for. *)

module Json = Olayout_telemetry.Json

type klass = Deterministic | Timing

type status =
  | Equal  (** deterministic and identical *)
  | Drift  (** deterministic and different: gate-worthy *)
  | Within_tolerance
  | Exceeds_tolerance
  | Added  (** present only in the new artifact *)
  | Removed  (** present only in the old artifact *)

type entry = {
  e_path : string;
  e_class : klass;
  e_old : float option;
  e_new : float option;
  e_status : status;
}

type t = {
  tolerance : float;
  old_art : Artifact.t;
  new_art : Artifact.t;
  entries : entry list;
  identity_warnings : string list;
  ignored_prefixes : string list;
  ignored : int;  (* metric paths dropped by the prefixes, both sides *)
}

let default_tolerance = 0.25

(* --- classification --------------------------------------------------- *)

let ends_with ~suffix s =
  let ls = String.length suffix and l = String.length s in
  l >= ls && String.sub s (l - ls) ls = suffix

let timing_suffix path =
  ends_with ~suffix:"seconds" path
  || ends_with ~suffix:"_s" path
  || ends_with ~suffix:"per_s" path

(* Span paths contain '.' and '/' freely, so classification keys off the
   first dot-segment plus the leaf suffix - never a full split. *)
let classify path =
  let head = match String.index_opt path '.' with
    | Some i -> String.sub path 0 i
    | None -> path
  in
  let starts_with ~prefix s =
    let lp = String.length prefix in
    String.length s >= lp && String.sub s 0 lp = prefix
  in
  (* par.* metrics (pool size, task/steal counts, idle time, speedup)
     legitimately differ between -j legs gated against one baseline. *)
  if starts_with ~prefix:"counters.par." path || starts_with ~prefix:"gauges.par." path
  then Timing
  else
  match head with
  | "total_seconds" -> Timing
  | "gc" -> Timing  (* allocation totals vary with runtime version/params *)
  | "counters" -> Deterministic
  (* Windowed instruction-clock series: pure simulation state, identical
     at any -j and under either sweep engine.  Covers both the bench
     artifact's timeline.* summary section and every path of a flattened
     olayout-timeline/v1 document (whose own heads are window_instrs /
     series, caught by the deterministic fallback). *)
  | "timeline" -> Deterministic
  (* Layout scorecards (olayout-explain/v1): provenance decisions plus
     replayed-trace miss attribution, byte-identical across legs. *)
  | "explain" -> Deterministic
  (* Drift observatory (olayout-drift/v1): windowed divergence permilles
     and staleness-matrix miss counts — pure simulation state, identical
     at any -j and under either sweep engine. *)
  | "drift" -> Deterministic
  | "figures" ->
      if ends_with ~suffix:"seconds" path || ends_with ~suffix:"mruns_per_s" path
      then Timing
      else Deterministic
  | "spans" | "passes" -> if ends_with ~suffix:"count" path then Deterministic else Timing
  | "trace_cache" -> if timing_suffix path then Timing else Deterministic
  | "gauges" -> if timing_suffix path then Timing else Deterministic
  | _ -> if timing_suffix path then Timing else Deterministic

(* --- comparison ------------------------------------------------------- *)

let status_of ~tolerance klass old_v new_v =
  match klass with
  | Deterministic -> if old_v = new_v then Equal else Drift
  | Timing ->
      if old_v = new_v then Within_tolerance
      else if old_v = 0.0 then Exceeds_tolerance
      else if abs_float (new_v -. old_v) /. abs_float old_v <= tolerance then
        Within_tolerance
      else Exceeds_tolerance

let identity_warnings (old_art : Artifact.t) (new_art : Artifact.t) =
  let w = ref [] in
  if old_art.Artifact.scale <> new_art.Artifact.scale then
    w :=
      Printf.sprintf
        "scale differs (%s vs %s): absolute counts are not comparable across scales"
        old_art.Artifact.scale new_art.Artifact.scale
      :: !w;
  (* argv.(0) is the binary path - machine-specific, not identity. *)
  let flags a = match a.Artifact.argv with [] -> [] | _ :: rest -> rest in
  if flags old_art <> flags new_art && (old_art.Artifact.argv <> [] || new_art.Artifact.argv <> [])
  then
    w :=
      Printf.sprintf "flag sets differ (old: %s; new: %s)"
        (match flags old_art with [] -> "<none>" | f -> String.concat " " f)
        (match flags new_art with [] -> "<none>" | f -> String.concat " " f)
      :: !w;
  List.rev !w

let compare_artifacts ?(tolerance = default_tolerance) ?(ignore_prefixes = [])
    ~old_art ~new_art () =
  if old_art.Artifact.schema <> new_art.Artifact.schema then
    raise
      (Artifact.Load_error
         (Printf.sprintf "cannot compare %s (%s) against %s (%s): different schemas"
            old_art.Artifact.path old_art.Artifact.schema new_art.Artifact.path
            new_art.Artifact.schema));
  (* Merge-join over the two sorted metric lists. *)
  let rec merge acc olds news =
    match (olds, news) with
    | [], [] -> List.rev acc
    | (p, v) :: olds', [] ->
        merge
          ({ e_path = p; e_class = classify p; e_old = Some v; e_new = None;
             e_status = Removed }
          :: acc)
          olds' []
    | [], (p, v) :: news' ->
        merge
          ({ e_path = p; e_class = classify p; e_old = None; e_new = Some v;
             e_status = Added }
          :: acc)
          [] news'
    | (po, vo) :: olds', (pn, vn) :: news' ->
        if po = pn then
          let klass = classify po in
          merge
            ({ e_path = po; e_class = klass; e_old = Some vo; e_new = Some vn;
               e_status = status_of ~tolerance klass vo vn }
            :: acc)
            olds' news'
        else if po < pn then
          merge
            ({ e_path = po; e_class = classify po; e_old = Some vo; e_new = None;
               e_status = Removed }
            :: acc)
            olds' news
        else
          merge
            ({ e_path = pn; e_class = classify pn; e_old = None; e_new = Some vn;
               e_status = Added }
            :: acc)
            olds news'
  in
  (* Prefix filtering runs before the join: metrics two runs legitimately
     disagree on (e.g. counters.cachesim.* between the icache and
     stackdist engines) drop out entirely instead of surfacing as Drift,
     while everything else still gates. *)
  let has_prefix p path =
    let lp = String.length p in
    String.length path >= lp && String.sub path 0 lp = p
  in
  let keep (path, _) = not (List.exists (fun p -> has_prefix p path) ignore_prefixes) in
  let olds = List.filter keep old_art.Artifact.metrics in
  let news = List.filter keep new_art.Artifact.metrics in
  let ignored =
    List.length old_art.Artifact.metrics
    + List.length new_art.Artifact.metrics
    - List.length olds - List.length news
  in
  {
    tolerance;
    old_art;
    new_art;
    entries = merge [] olds news;
    identity_warnings = identity_warnings old_art new_art;
    ignored_prefixes = ignore_prefixes;
    ignored;
  }

let with_status st t = List.filter (fun e -> e.e_status = st) t.entries

let gate_failures ?(timing = false) t =
  List.filter
    (fun e -> e.e_status = Drift || (timing && e.e_status = Exceeds_tolerance))
    t.entries

(* --- rendering -------------------------------------------------------- *)

let schema = "olayout-compare/v1"

let status_name = function
  | Equal -> "equal"
  | Drift -> "drift"
  | Within_tolerance -> "within_tolerance"
  | Exceeds_tolerance -> "exceeds_tolerance"
  | Added -> "added"
  | Removed -> "removed"

let class_name = function Deterministic -> "deterministic" | Timing -> "timing"

let count t st = List.length (with_status st t)

let side_json (a : Artifact.t) =
  Json.Object
    [
      ("path", Json.String a.Artifact.path);
      ("schema", Json.String a.Artifact.schema);
      ("scale", Json.String a.Artifact.scale);
      ("argv", Json.Array (List.map (fun s -> Json.String s) a.Artifact.argv));
    ]

let opt_num = function Some v -> Json.Float v | None -> Json.Null

(* The artifact records only the interesting entries (everything except
   Equal/Within_tolerance) in full; the matching bulk is summarised by the
   counts, which keeps COMPARE files readable next to their inputs. *)
let to_json ?fidelity ?(gated = false) ?(gate_failed = false) t =
  let interesting =
    List.filter
      (fun e -> match e.e_status with Equal | Within_tolerance -> false | _ -> true)
      t.entries
  in
  Json.Object
    ([
       ("schema", Json.String schema);
       ("tolerance", Json.Float t.tolerance);
       ( "ignore_prefixes",
         Json.Array (List.map (fun p -> Json.String p) t.ignored_prefixes) );
       ("old", side_json t.old_art);
       ("new", side_json t.new_art);
       ( "identity_warnings",
         Json.Array (List.map (fun w -> Json.String w) t.identity_warnings) );
       ( "summary",
         Json.Object
           [
             ("deterministic_equal", Json.Int (count t Equal));
             ("deterministic_drift", Json.Int (count t Drift));
             ("timing_within_tolerance", Json.Int (count t Within_tolerance));
             ("timing_exceeds_tolerance", Json.Int (count t Exceeds_tolerance));
             ("added", Json.Int (count t Added));
             ("removed", Json.Int (count t Removed));
             (* Both the dropped-path count and the prefixes that did the
                dropping: a COMPARE file must say what it chose not to
                compare. *)
             ( "ignored",
               Json.Object
                 [
                   ("count", Json.Int t.ignored);
                   ( "prefixes",
                     Json.Array
                       (List.map (fun p -> Json.String p) t.ignored_prefixes) );
                 ] );
           ] );
       ( "gate",
         Json.Object
           [ ("enabled", Json.Bool gated); ("failed", Json.Bool gate_failed) ] );
       ( "metrics",
         Json.Array
           (List.map
              (fun e ->
                Json.Object
                  [
                    ("path", Json.String e.e_path);
                    ("class", Json.String (class_name e.e_class));
                    ("old", opt_num e.e_old);
                    ("new", opt_num e.e_new);
                    ("status", Json.String (status_name e.e_status));
                  ])
              interesting) );
     ]
    @ match fidelity with Some f -> [ ("fidelity", Fidelity.to_json f) ] | None -> [])

let fmt_value v =
  if Float.is_integer v && abs_float v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let fmt_delta e =
  match (e.e_old, e.e_new) with
  | Some o, Some n ->
      let d = n -. o in
      if o <> 0.0 then Printf.sprintf "%+.6g (%+.1f%%)" d (100.0 *. d /. abs_float o)
      else Printf.sprintf "%+.6g" d
  | _ -> "-"

let pp ppf t =
  Format.fprintf ppf "@.### compare: %s -> %s@." t.old_art.Artifact.path
    t.new_art.Artifact.path;
  List.iter (fun w -> Format.fprintf ppf "  warning: %s@." w) t.identity_warnings;
  let interesting =
    List.filter
      (fun e -> match e.e_status with Equal | Within_tolerance -> false | _ -> true)
      t.entries
  in
  if interesting <> [] then begin
    Format.fprintf ppf "%-52s %-13s %14s %14s %22s  %s@." "metric" "class" "old"
      "new" "delta" "status";
    List.iter
      (fun e ->
        Format.fprintf ppf "%-52s %-13s %14s %14s %22s  %s@." e.e_path
          (class_name e.e_class)
          (match e.e_old with Some v -> fmt_value v | None -> "-")
          (match e.e_new with Some v -> fmt_value v | None -> "-")
          (fmt_delta e) (status_name e.e_status))
      interesting
  end;
  Format.fprintf ppf
    "compare: %d deterministic equal, %d drifted; %d timing within +/-%.0f%%, %d \
     beyond; %d added, %d removed@."
    (count t Equal) (count t Drift) (count t Within_tolerance)
    (100.0 *. t.tolerance) (count t Exceeds_tolerance) (count t Added)
    (count t Removed);
  if t.ignored_prefixes <> [] then
    Format.fprintf ppf "compare: %d metric path(s) ignored by prefix (%s)@."
      t.ignored
      (String.concat ", " t.ignored_prefixes)

(** Reproduction-fidelity scoreboard: the paper's headline figure claims
    (Figs 4-5, 6, 7, 12, 15; targets from EXPERIMENTS.md) encoded as
    checked bands over the [fig.*] gauges the harness figures publish.

    Each claim names a gauge metric, the paper's point value, and an
    accepted band (wide enough for both quick and full scale — see the
    calibration note in the implementation).  Scoring against a run
    yields pass/fail/skipped per claim (skipped when the figure did not
    run, so the gauge does not exist). *)

type claim = {
  claim_id : string;
  figure : string;
  metric : string;  (** gauge name; [gauges.<metric>] in a bench artifact *)
  description : string;
  paper : float;  (** the paper's point value for the metric *)
  lo : float;
  hi : float;
}

type status = Pass | Fail | Skipped

type scored = { claim : claim; measured : float option; status : status }

type report = { scored : scored list; passed : int; failed : int; skipped : int }

val claims : claim list

val evaluate : lookup:(string -> float option) -> report
(** Score every claim against [lookup] (metric name -> measured value). *)

val of_artifact : Artifact.t -> report
(** Score against a loaded bench artifact's [gauges] section. *)

val of_registry : unit -> report
(** Score against the live telemetry registry (end of a bench run). *)

val publish_gauges : report -> unit
(** Set [fidelity.<claim>] (1 pass / 0 fail) plus
    [fidelity.claims_passed]/[fidelity.claims_failed] gauges, so the
    scoreboard snapshots into the bench artifact as deterministic
    metrics. *)

val to_json : report -> Olayout_telemetry.Json.t
val pp : Format.formatter -> report -> unit

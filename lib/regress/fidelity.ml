(* Reproduction-fidelity scoreboard: the paper's figure-level headline
   claims (Fig 4-5, 6, 7, 12, 15 - the numbers the whole argument rests
   on) encoded as checked bands over the fig.* gauges the harness figures
   publish.  A run scores claim by claim, so drift away from the paper is
   a first-class observable - in the compare artifact, in fidelity.*
   gauges, and on the console - rather than something a human re-reads
   out of the figure tables.

   Bands are deliberately wider than the paper's point values: EXPERIMENTS.md
   documents why our synthetic workload lands near but not on them (more
   bimodal branches, sharper profile head), and both quick and full scale
   must stay inside.  A claim failing therefore means the reproduction
   *moved*, not that it was never exact. *)

module Telemetry = Olayout_telemetry.Telemetry
module Json = Olayout_telemetry.Json

type claim = {
  claim_id : string;
  figure : string;
  metric : string;  (* gauge name, [gauges.<metric>] in a bench artifact *)
  description : string;
  paper : float;
  lo : float;
  hi : float;
}

type status = Pass | Fail | Skipped

type scored = { claim : claim; measured : float option; status : status }
type report = { scored : scored list; passed : int; failed : int; skipped : int }

let claim ~id ~figure ~metric ~paper ~lo ~hi description =
  { claim_id = id; figure; metric; description; paper; lo; hi }

let claims =
  [
    claim ~id:"fig4.opt_vs_base_64k" ~figure:"fig4"
      ~metric:"fig.fig4.opt_vs_base_64k" ~paper:0.40 ~lo:0.25 ~hi:0.70
      "optimized/base app i-cache misses at 64KB/128B DM (paper: 55-65% reduction)";
    claim ~id:"fig4.opt_vs_base_128k" ~figure:"fig4"
      ~metric:"fig.fig4.opt_vs_base_128k" ~paper:0.40 ~lo:0.15 ~hi:0.65
      "optimized/base app i-cache misses at 128KB/128B DM";
    claim ~id:"fig6.assoc_buys_nothing" ~figure:"fig6"
      ~metric:"fig.fig6.base_dm_vs_4way_64k" ~paper:1.0 ~lo:0.85 ~hi:1.15
      "base DM/4-way misses at 64KB (paper: associativity adds little, capacity dominates)";
    claim ~id:"fig6.layout_beats_assoc" ~figure:"fig6"
      ~metric:"fig.fig6.opt_dm_vs_base_4way_64k" ~paper:0.50 ~lo:0.25 ~hi:0.80
      "optimized-DM/base-4-way misses at 64KB (paper: layout is worth much more)";
    claim ~id:"fig7.porder_near_base" ~figure:"fig7"
      ~metric:"fig.fig7.porder_vs_base_64k" ~paper:1.0 ~lo:0.80 ~hi:1.10
      "porder-alone/base misses at 64KB (paper: procedure ordering alone ~ base)";
    claim ~id:"fig7.chain_big_step" ~figure:"fig7"
      ~metric:"fig.fig7.chain_vs_base_64k" ~paper:0.55 ~lo:0.35 ~hi:0.80
      "chain/base misses at 64KB (paper: basic-block chaining is the big step)";
    claim ~id:"fig7.all_best" ~figure:"fig7" ~metric:"fig.fig7.all_vs_base_64k"
      ~paper:0.45 ~lo:0.25 ~hi:0.70
      "all/base misses at 64KB (paper: the full pipeline is the best combination)";
    claim ~id:"fig12.combined_64k" ~figure:"fig12"
      ~metric:"fig.fig12.opt_vs_base_64k" ~paper:0.475 ~lo:0.30 ~hi:0.70
      "combined app+OS optimized/base misses at 64KB (paper: 45-60% reduction)";
    claim ~id:"fig12.combined_128k" ~figure:"fig12"
      ~metric:"fig.fig12.opt_vs_base_128k" ~paper:0.475 ~lo:0.25 ~hi:0.65
      "combined app+OS optimized/base misses at 128KB";
    claim ~id:"fig15.speedup_21164" ~figure:"fig15"
      ~metric:"fig.fig15.speedup.21164" ~paper:1.33 ~lo:1.10 ~hi:1.60
      "base->all execution-time speedup on the 21164 model (paper: ~1.33x)";
    claim ~id:"fig15.speedup_21264" ~figure:"fig15"
      ~metric:"fig.fig15.speedup.21264" ~paper:1.33 ~lo:1.10 ~hi:1.60
      "base->all execution-time speedup on the 21264 model (paper: ~1.33x)";
    claim ~id:"fig15.speedup_21364" ~figure:"fig15"
      ~metric:"fig.fig15.speedup.21364-sim" ~paper:1.37 ~lo:1.10 ~hi:1.60
      "base->all execution-time speedup on the simulated 21364 (paper: 1.37x)";
    claim ~id:"fig15.consistency" ~figure:"fig15"
      ~metric:"fig.fig15.speedup_spread" ~paper:0.04 ~lo:0.0 ~hi:0.15
      "speedup spread across the three machines (paper: consistent across generations)";
  ]

let evaluate ~lookup =
  let scored =
    List.map
      (fun c ->
        match lookup c.metric with
        | None -> { claim = c; measured = None; status = Skipped }
        | Some m ->
            {
              claim = c;
              measured = Some m;
              status = (if c.lo <= m && m <= c.hi then Pass else Fail);
            })
      claims
  in
  let count st = List.length (List.filter (fun s -> s.status = st) scored) in
  { scored; passed = count Pass; failed = count Fail; skipped = count Skipped }

let of_artifact art =
  evaluate ~lookup:(fun metric -> Artifact.metric art ("gauges." ^ metric))

let of_registry () =
  let gauges = Telemetry.gauges () in
  evaluate ~lookup:(fun metric -> List.assoc_opt metric gauges)

(* fidelity.<claim> = 1/0 per scored claim plus pass/fail totals; the
   gauges snapshot into the bench artifact, so the scoreboard itself is a
   deterministic metric the diff engine gates. *)
let publish_gauges r =
  List.iter
    (fun s ->
      match s.status with
      | Skipped -> ()
      | Pass | Fail ->
          Telemetry.set_gauge
            (Telemetry.gauge ("fidelity." ^ s.claim.claim_id))
            (if s.status = Pass then 1.0 else 0.0))
    r.scored;
  if r.passed + r.failed > 0 then begin
    Telemetry.set_gauge (Telemetry.gauge "fidelity.claims_passed") (float_of_int r.passed);
    Telemetry.set_gauge (Telemetry.gauge "fidelity.claims_failed") (float_of_int r.failed)
  end

let status_name = function Pass -> "pass" | Fail -> "FAIL" | Skipped -> "skipped"

let to_json r =
  Json.Object
    [
      ("passed", Json.Int r.passed);
      ("failed", Json.Int r.failed);
      ("skipped", Json.Int r.skipped);
      ( "claims",
        Json.Array
          (List.map
             (fun s ->
               Json.Object
                 ([
                    ("id", Json.String s.claim.claim_id);
                    ("figure", Json.String s.claim.figure);
                    ("metric", Json.String s.claim.metric);
                    ("description", Json.String s.claim.description);
                    ("paper", Json.Float s.claim.paper);
                    ("lo", Json.Float s.claim.lo);
                    ("hi", Json.Float s.claim.hi);
                    ("status", Json.String (status_name s.status));
                  ]
                 @
                 match s.measured with
                 | Some m -> [ ("measured", Json.Float m) ]
                 | None -> []))
             r.scored) );
    ]

let pp ppf r =
  Format.fprintf ppf "@.### reproduction fidelity - paper claims scored@.";
  Format.fprintf ppf "%-26s %-8s %9s %15s %9s  %s@." "claim" "figure" "paper"
    "band" "measured" "status";
  List.iter
    (fun s ->
      Format.fprintf ppf "%-26s %-8s %9.3f [%5.2f, %5.2f] %9s  %s@."
        s.claim.claim_id s.claim.figure s.claim.paper s.claim.lo s.claim.hi
        (match s.measured with Some m -> Printf.sprintf "%.3f" m | None -> "-")
        (status_name s.status))
    r.scored;
  Format.fprintf ppf "fidelity: %d/%d claims pass%s@." r.passed (r.passed + r.failed)
    (if r.skipped > 0 then Printf.sprintf " (%d skipped: figure not run)" r.skipped
     else "")

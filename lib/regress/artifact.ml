(* Loader for the machine-readable run artifacts (BENCH_*.json, schema
   olayout-bench/v1, and DIAG_*.json, schema olayout-diag/v1): parse,
   validate the schema tag, and flatten every numeric leaf into a
   dot-joined metric path the diff engine can align across runs.

   Identity fields (schema, scale, argv) are kept apart from the metric
   map: two artifacts are compared by what they measured, and the identity
   fields say whether that comparison is apples-to-apples (same scale,
   same flag set).  generated_unix_time is deliberately dropped - wall
   time never identifies a run. *)

module Json = Olayout_telemetry.Json

exception Load_error of string

let known_schemas =
  [
    "olayout-bench/v1";
    "olayout-diag/v1";
    "olayout-timeline/v1";
    "olayout-explain/v1";
    "olayout-drift/v1";
    "olayout-relayout/v1";
  ]

type t = {
  path : string;  (** source file, or ["<memory>"] for {!of_json} *)
  schema : string;
  scale : string;
  argv : string list;
  metrics : (string * float) list;  (** flattened path -> value, sorted *)
}

let fail fmt = Printf.ksprintf (fun msg -> raise (Load_error msg)) fmt

(* Keys of the top-level identity/meta fields: everything else flattens
   into the metric map. *)
let identity_keys = [ "schema"; "scale"; "generated_unix_time"; "argv" ]

(* Array elements keyed by a naming field flatten under that name instead
   of their index, so reordering (or adding) a figure or a span does not
   shift every later element's metric path. *)
let naming_keys = [ "id"; "pass"; "path"; "name" ]

let element_key fields index =
  let named =
    List.find_map
      (fun k ->
        match List.assoc_opt k fields with Some (Json.String s) -> Some s | _ -> None)
      naming_keys
  in
  match named with Some s -> s | None -> string_of_int index

let flatten root =
  let acc = ref [] in
  let join prefix key = if prefix = "" then key else prefix ^ "." ^ key in
  let rec go prefix = function
    | Json.Int i -> acc := (prefix, float_of_int i) :: !acc
    | Json.Float f -> acc := (prefix, f) :: !acc
    | Json.Bool b -> acc := (prefix, if b then 1.0 else 0.0) :: !acc
    (* Null (old artifacts' mruns_per_s) and strings (descriptions, names)
       are not metrics. *)
    | Json.Null | Json.String _ -> ()
    | Json.Object fields ->
        List.iter (fun (k, v) -> go (join prefix k) v) fields
    | Json.Array items ->
        List.iteri
          (fun i item ->
            let key =
              match item with
              | Json.Object fields -> element_key fields i
              | _ -> string_of_int i
            in
            go (join prefix key) item)
          items
  in
  (match root with
  | Json.Object fields ->
      List.iter
        (fun (k, v) -> if not (List.mem k identity_keys) then go k v)
        fields
  | _ -> fail "artifact root is not a JSON object");
  List.sort (fun (a, _) (b, _) -> compare a b) !acc

let string_field ~what j key =
  match Json.member key j with
  | Some (Json.String s) -> s
  | Some _ -> fail "%s: field %S is not a string" what key
  | None -> fail "%s: missing field %S" what key

let of_json ?(path = "<memory>") j =
  let schema = string_field ~what:path j "schema" in
  if not (List.mem schema known_schemas) then begin
    let base = List.hd (String.split_on_char '/' schema) in
    if List.exists (fun k -> List.hd (String.split_on_char '/' k) = base) known_schemas
    then
      fail "%s: unsupported %s schema version %S (this build reads: %s)" path base
        schema
        (String.concat ", " known_schemas)
    else
      fail "%s: unknown artifact schema %S (expected one of: %s)" path schema
        (String.concat ", " known_schemas)
  end;
  let scale =
    match Json.member "scale" j with
    | Some (Json.String s) -> s
    | Some _ -> fail "%s: field \"scale\" is not a string" path
    | None -> "?"
  in
  let argv =
    match Json.member "argv" j with
    | Some (Json.Array items) ->
        List.filter_map (fun i -> Json.get_string i) items
    | _ -> []
  in
  { path; schema; scale; argv; metrics = flatten j }

let load_file path =
  let j =
    try Json.parse_file path
    with Json.Parse_error msg -> fail "not a readable JSON artifact: %s" msg
  in
  of_json ~path j

let metric t path = List.assoc_opt path t.metrics

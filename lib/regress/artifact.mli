(** Loader for the run artifacts the telemetry layer writes
    ([BENCH_<scale>.json], schema [olayout-bench/v1], and
    [DIAG_<scale>.json], schema [olayout-diag/v1]).

    Every numeric leaf of the document flattens into a dot-joined metric
    path ([counters.cachesim.icache_misses],
    [figures.fig4.runs_live], [diag.classification.conflict], ...).
    Array elements carrying a naming field ([id], [pass], [path] or
    [name]) are keyed by that name rather than their index, so element
    order never shifts metric paths.  Nulls (old artifacts'
    [mruns_per_s]) and strings are not metrics.

    Identity fields — [schema], [scale], [argv] — are kept out of the
    metric map: the diff engine compares measurements, and uses identity
    to warn when two artifacts were not produced the same way.
    [generated_unix_time] is dropped entirely. *)

exception Load_error of string
(** Raised with a descriptive message (file path included) on unreadable
    files, malformed JSON, missing or unknown schema tags, and schema
    version mismatches. *)

val known_schemas : string list

type t = {
  path : string;  (** source file, or ["<memory>"] for {!of_json} *)
  schema : string;
  scale : string;
  argv : string list;  (** empty for artifacts without an argv record *)
  metrics : (string * float) list;  (** flattened path -> value, sorted *)
}

val of_json : ?path:string -> Olayout_telemetry.Json.t -> t
val load_file : string -> t
val metric : t -> string -> float option

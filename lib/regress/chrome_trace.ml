(* Chrome trace-event export: render a telemetry JSONL stream (the
   {"ev":"span",...} / {"ev":"sample",...} lines Telemetry's sink writes)
   as a traceEvents document loadable in Perfetto / chrome://tracing.

   Layout: one track ("thread") per figure phase - the first
   path component named report.<id>, or the root span otherwise - so the
   per-figure timelines sit side by side; watched counters become
   counter tracks ("ph":"C"), e.g. cumulative i-cache misses and the
   trace-cache footprint over the run.  Timestamps are the telemetry
   stream's process-relative seconds converted to microseconds.

   {"ev":"timeline",...} lines (windowed series on the simulated
   instruction clock) render as counter tracks in a second process
   (pid 2): their clock is instructions, not seconds, so they must not
   share an axis with the wall-clock spans.  One simulated instruction
   maps to one microsecond.

   {"ev":"provenance",...} lines from the layout-decision log get a third
   process (pid 3, "address space"): each pipeline's final placement
   events render as one "X" span per procedure with ts = entry address
   and dur = encoded bytes (1 byte = 1 us), one track per combo — a
   scrollable memory map of where the optimizer put everything.
   Decision events from the other passes carry no spatial coordinate and
   are skipped. *)

module Json = Olayout_telemetry.Json

exception Convert_error of string

let schema = "olayout-chrome-trace/v1"

let fail fmt = Printf.ksprintf (fun msg -> raise (Convert_error msg)) fmt

(* "bench.total/report.fig4/optimize" -> "report.fig4";
   "bench.total/bench.setup" -> "bench.total". *)
let phase_of_path path =
  let components = String.split_on_char '/' path in
  let is_figure c =
    String.length c > 7 && String.sub c 0 7 = "report."
  in
  match List.find_opt is_figure components with
  | Some c -> c
  | None -> ( match components with c :: _ -> c | [] -> path)

let us s = 1e6 *. s

let of_events events =
  (* Stable tids: first-seen order of phases, 1-based ("track 0" renders
     oddly in some viewers). *)
  let tids : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let phases = ref [] in
  let tid_of phase =
    match Hashtbl.find_opt tids phase with
    | Some t -> t
    | None ->
        let t = Hashtbl.length tids + 1 in
        Hashtbl.add tids phase t;
        phases := phase :: !phases;
        t
  in
  let spans = ref [] and samples = ref [] in
  let timelines = ref [] in
  let placements = ref [] in
  List.iter
    (fun ev ->
      match Json.member "ev" ev with
      | Some (Json.String "span") -> (
          match
            ( Json.member "name" ev, Json.member "path" ev,
              Option.bind (Json.member "start_s" ev) Json.get_float,
              Option.bind (Json.member "dur_s" ev) Json.get_float )
          with
          | Some (Json.String name), Some (Json.String path), Some start, Some dur ->
              spans := (name, tid_of (phase_of_path path), start, dur) :: !spans
          | _ -> fail "span event missing name/path/start_s/dur_s")
      | Some (Json.String "sample") -> (
          match
            ( Json.member "name" ev,
              Option.bind (Json.member "t_s" ev) Json.get_float,
              Option.bind (Json.member "value" ev) Json.get_float )
          with
          | Some (Json.String name), Some t, Some v -> samples := (name, t, v) :: !samples
          | _ -> fail "sample event missing name/t_s/value")
      | Some (Json.String "timeline") -> (
          match
            ( Json.member "name" ev,
              Option.bind (Json.member "window_instrs" ev) Json.get_int,
              Option.bind (Json.member "values" ev) Json.get_list )
          with
          | Some (Json.String name), Some w, Some vs ->
              let values =
                List.map
                  (fun v ->
                    match Json.get_int v with
                    | Some n -> n
                    | None -> fail "timeline event has a non-integer value")
                  vs
              in
              timelines := (name, w, values) :: !timelines
          | _ -> fail "timeline event missing name/window_instrs/values")
      | Some (Json.String "provenance") -> (
          match Json.member "pass" ev with
          | Some (Json.String "placement") -> (
              let fields = Json.member "fields" ev in
              let fget k = Option.bind fields (Json.member k) in
              match
                ( fget "combo", fget "name",
                  Option.bind (fget "addr") Json.get_int,
                  Option.bind (fget "bytes") Json.get_int )
              with
              | Some (Json.String combo), Some (Json.String name), Some addr,
                Some bytes ->
                  placements := (combo, name, addr, bytes) :: !placements
              | _ -> fail "placement provenance event missing combo/name/addr/bytes")
          | _ -> () (* per-pass decision events have no spatial coordinate *))
      (* meta header and final registry dump events carry no timeline *)
      | _ -> ())
    events;
  let span_events =
    List.rev_map
      (fun (name, tid, start, dur) ->
        ( start,
          Json.Object
            [
              ("name", Json.String name);
              ("cat", Json.String "span");
              ("ph", Json.String "X");
              ("pid", Json.Int 1);
              ("tid", Json.Int tid);
              ("ts", Json.Float (us start));
              ("dur", Json.Float (us dur));
            ] ))
      !spans
  in
  let counter_events =
    List.rev_map
      (fun (name, t, v) ->
        ( t,
          Json.Object
            [
              ("name", Json.String name);
              ("cat", Json.String "counter");
              ("ph", Json.String "C");
              ("pid", Json.Int 1);
              ("ts", Json.Float (us t));
              ("args", Json.Object [ ("value", Json.Float v) ]);
            ] ))
      !samples
  in
  let timeline =
    List.stable_sort
      (fun (a, _) (b, _) -> compare a b)
      (span_events @ counter_events)
  in
  (* Windowed series on the instruction clock: one counter event per
     window, ts = window start (1 instr = 1 us), on their own pid so
     Perfetto never mixes the two clocks on one axis. *)
  let instr_counter_events =
    List.concat_map
      (fun (name, window_instrs, values) ->
        List.mapi
          (fun i v ->
            Json.Object
              [
                ("name", Json.String name);
                ("cat", Json.String "timeline");
                ("ph", Json.String "C");
                ("pid", Json.Int 2);
                ("ts", Json.Float (float_of_int (i * window_instrs)));
                ("args", Json.Object [ ("value", Json.Int v) ]);
              ])
          values)
      (List.rev !timelines)
  in
  (* The memory map: one track per combo, spans positioned by address. *)
  let combo_tids : (string, int) Hashtbl.t = Hashtbl.create 4 in
  let combos = ref [] in
  let combo_tid_of combo =
    match Hashtbl.find_opt combo_tids combo with
    | Some t -> t
    | None ->
        let t = Hashtbl.length combo_tids + 1 in
        Hashtbl.add combo_tids combo t;
        combos := combo :: !combos;
        t
  in
  let placement_events =
    List.map
      (fun (combo, name, addr, bytes) ->
        Json.Object
          [
            ("name", Json.String name);
            ("cat", Json.String "provenance");
            ("ph", Json.String "X");
            ("pid", Json.Int 3);
            ("tid", Json.Int (combo_tid_of combo));
            ("ts", Json.Float (float_of_int addr));
            ("dur", Json.Float (float_of_int (max bytes 1)));
          ])
      (List.rev !placements)
  in
  let thread_metas =
    List.concat_map
      (fun phase ->
        let tid = Hashtbl.find tids phase in
        [
          Json.Object
            [
              ("name", Json.String "thread_name");
              ("ph", Json.String "M");
              ("pid", Json.Int 1);
              ("tid", Json.Int tid);
              ("args", Json.Object [ ("name", Json.String phase) ]);
            ];
          Json.Object
            [
              ("name", Json.String "thread_sort_index");
              ("ph", Json.String "M");
              ("pid", Json.Int 1);
              ("tid", Json.Int tid);
              ("args", Json.Object [ ("sort_index", Json.Int tid) ]);
            ];
        ])
      (List.rev !phases)
  in
  let process_meta =
    Json.Object
      [
        ("name", Json.String "process_name");
        ("ph", Json.String "M");
        ("pid", Json.Int 1);
        ("args", Json.Object [ ("name", Json.String "olayout") ]);
      ]
  in
  let instr_process_meta =
    if instr_counter_events = [] then []
    else
      [
        Json.Object
          [
            ("name", Json.String "process_name");
            ("ph", Json.String "M");
            ("pid", Json.Int 2);
            ( "args",
              Json.Object
                [ ("name", Json.String "simulated instruction clock") ] );
          ];
      ]
  in
  let addr_metas =
    if placement_events = [] then []
    else
      Json.Object
        [
          ("name", Json.String "process_name");
          ("ph", Json.String "M");
          ("pid", Json.Int 3);
          ( "args",
            Json.Object [ ("name", Json.String "address space (1 B = 1 us)") ] );
        ]
      :: List.map
           (fun combo ->
             Json.Object
               [
                 ("name", Json.String "thread_name");
                 ("ph", Json.String "M");
                 ("pid", Json.Int 3);
                 ("tid", Json.Int (Hashtbl.find combo_tids combo));
                 ("args", Json.Object [ ("name", Json.String combo) ]);
               ])
           (List.rev !combos)
  in
  Json.Object
    [
      ( "traceEvents",
        Json.Array
          ((process_meta :: thread_metas)
          @ instr_process_meta @ addr_metas @ List.map snd timeline
          @ instr_counter_events @ placement_events) );
      ("displayTimeUnit", Json.String "ms");
      ("otherData", Json.Object [ ("schema", Json.String schema) ]);
    ]

let read_jsonl path =
  let ic =
    try open_in path
    with Sys_error msg -> fail "cannot open %s: %s" path msg
  in
  let events = ref [] and lineno = ref 0 in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      try
        while true do
          let line = input_line ic in
          incr lineno;
          if String.trim line <> "" then
            match Json.parse line with
            | ev -> events := ev :: !events
            | exception Json.Parse_error msg ->
                fail "%s:%d: invalid JSONL line (%s)" path !lineno msg
        done
      with End_of_file -> ());
  List.rev !events

let of_jsonl path = of_events (read_jsonl path)

let convert ~src ~dst =
  let doc = of_jsonl src in
  let oc = open_out dst in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Json.output oc doc;
      output_char oc '\n')

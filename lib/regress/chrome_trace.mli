(** Chrome trace-event export: convert a telemetry JSONL stream (the
    [{"ev":"span",...}] / [{"ev":"sample",...}] lines the {!Telemetry}
    sink writes) into a [traceEvents] JSON document loadable in Perfetto
    or [chrome://tracing].

    Spans become complete ([ph:"X"]) events, one track per figure phase
    (the first [report.<id>] path component); watched counter/gauge
    samples become counter ([ph:"C"]) tracks — e.g. cumulative i-cache
    misses and the trace-cache footprint over the run. *)

exception Convert_error of string

val schema : string
(** ["olayout-chrome-trace/v1"], recorded under [otherData.schema]. *)

val phase_of_path : string -> string
(** Track key for a span path: the first [/]-separated component that
    starts with ["report."], else the root component. *)

val of_events : Olayout_telemetry.Json.t list -> Olayout_telemetry.Json.t
(** Build the trace document from parsed JSONL events.  Raises
    {!Convert_error} on a span/sample event missing required fields;
    events with other (or no) ["ev"] tags are ignored. *)

val of_jsonl : string -> Olayout_telemetry.Json.t
(** [of_events] over a JSONL file.  Raises {!Convert_error} on I/O or
    parse failure (with file/line context). *)

val convert : src:string -> dst:string -> unit
(** Read the JSONL at [src], write the trace document to [dst]. *)

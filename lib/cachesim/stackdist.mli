(** Single-pass all-associativity cache simulation via LRU stack distances.

    Mattson's stack algorithm, generalized to set-associative caches with
    bit-selection set mapping (Hill & Smith's "all-associativity"
    simulation): configurations are grouped by line size, and one LRU
    distance stack per group answers hit/miss for {e every} cache size and
    associativity sharing that line size in a single pass over the trace.

    The key identity: for a reference to line [L] under a cache with [2^j]
    sets and associativity [a] (true per-set LRU), the access hits iff [L]
    has been referenced before and fewer than [a] {e distinct} lines whose
    low [j] address bits match [L]'s have been referenced since — i.e. the
    number of more-recently-used set conflicts is below the set capacity.
    Both this engine and {!Icache} implement exact per-set LRU, so their
    miss counts are {e byte-identical}, not approximate; the regression
    gate relies on that.

    A fully-associative configuration ([2^0] sets, [a] = capacity in
    lines) degenerates to the classic Mattson stack — the same oracle as
    {!Olayout_diag.Shadow}, which this engine subsumes.

    Each group keeps its reference history {e set-refined}, with two
    representations chosen per index width.  Direct-mapped widths need
    only the question "was any {e other} congruent line referenced
    since?", which one newest-touch timestamp per set answers in O(1):
    the slot was last written by the referenced line itself, so a newer
    stamp proves a conflict.  Wider associativities keep one
    newest-first recency list per set at the finest granularity any of
    them needs; a reference's conflict count for [j] index bits is the
    number of list entries newer than the line's previous reference
    across the congruent finest lists — each list is scanned only past
    the timestamp, and the scan stops outright once the count reaches
    the width's largest associativity.  Per-line state (last reference
    time or list node) lives in a two-level paged array indexed by line
    number, so the hot path is branch-and-index with no hashing or
    allocation.  That bounds the per-reference work by the number of
    distinct index widths (plus one list hop per associativity way),
    {e independent of stack depth} — naive single-stack Mattson walks
    are linear in the stack distance, which for the capacity-dominated
    OLTP traces means scanning most of the footprint on every deep
    re-reference.  First-ever references skip counting entirely (every
    configuration misses).

    Not modelled (use {!Icache} where a figure needs them): per-stream
    owner attribution, the displacement/interference matrix, word-usage
    and lifetime histograms, prefetching.

    Telemetry (process-global, aggregated over every instance):
    [cachesim.stackdist.accesses] (line touches per group),
    [cachesim.stackdist.misses] (per-configuration miss events) and
    [cachesim.stackdist.walk_steps] (conflict-counting probes —
    timestamp checks plus recency-list hops, the engine's work
    metric). *)

type t

val create : Icache.config list -> t
(** One simulation over the given configurations, grouped by line size.
    Geometry validation matches {!Icache.create}: sizes and lines must be
    powers of two, lines at least 4 bytes, [size_bytes >= line * assoc].
    @raise Invalid_argument on bad geometry. *)

val access_run : t -> Olayout_exec.Run.t -> unit
(** Fetch a run through every group (hence every configuration). *)

val n_groups : t -> int
(** Number of distinct line sizes — the unit of parallel sharding. *)

val access_run_group : t -> int -> Olayout_exec.Run.t -> unit
(** Fetch a run through one group only.  Feeding each group index the full
    trace (in any interleaving across groups, each group in trace order)
    is equivalent to {!access_run}; {!Battery} uses this to own each group
    on exactly one domain. *)

val accesses : t -> int
(** Total line touches across all groups (one per line per group, the
    analogue of one {!Icache.accesses} per line size). *)

val misses : t -> string -> int
(** Miss count of the named configuration.
    @raise Invalid_argument when the name is unknown, listing the
    available configuration names. *)

val cold_misses : t -> string -> int
(** Compulsory misses of the named configuration: first-ever references
    to a line at that line size (identical for every configuration of the
    group, and equal to {!Icache.cold_misses} of a prefetch-free cache).
    @raise Invalid_argument when the name is unknown. *)

val misses_by_config : t -> (Icache.config * int) list
(** All (configuration, miss count) pairs in creation order — the
    drop-in replacement for walking a battery's cache list. *)

(** {1 Probes}

    A probe is a resolved handle onto one configuration's result slot, so
    per-run polling (the timeline layer reads the cumulative miss count
    around every fed run) skips the name lookup. *)

type probe

val probe : t -> string -> probe
(** @raise Invalid_argument when the name is unknown. *)

val probe_misses : probe -> int
(** Cumulative miss count so far for the probed configuration. *)

val probe_line_shift : probe -> int
(** [log2 line_bytes] of the probed configuration. *)

val probe_group : t -> string -> int
(** The group index ({!access_run_group}) that simulates the named
    configuration — i.e. the shard whose feed updates its probe. *)

(** A battery of cache configurations simulated over a single trace replay.

    The paper's figures sweep cache size, line size and associativity; the
    battery lets one executor walk feed every configuration at once, so a
    whole figure costs one trace generation. *)

type t

val create : ?track_usage:bool -> Icache.config list -> t
val access_run : t -> Olayout_exec.Run.t -> unit

(** Replay a recorded trace through every configuration.  With a pool of
    [jobs > 1], the config array is split into [<= jobs] disjoint contiguous
    shards replayed on separate domains — each cache owned by exactly one
    domain, results (and per-shard telemetry) merged in config-list order —
    producing byte-identical cache state to a serial replay.  [keep] filters
    runs (e.g. application-owned only) before they reach the caches. *)
val access_trace :
  ?pool:Olayout_par.Pool.t ->
  ?keep:(Olayout_exec.Run.t -> bool) ->
  t ->
  Olayout_exec.Trace.t ->
  unit
val flush_residents : t -> unit
val caches : t -> Icache.t list
val find : t -> string -> Icache.t
(** Lookup by configuration name.
    @raise Invalid_argument when absent, naming the requested configuration
    and the available cache names. *)

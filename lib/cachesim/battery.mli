(** A battery of cache configurations simulated over a single trace replay.

    The paper's figures sweep cache size, line size and associativity; the
    battery lets one executor walk feed every configuration at once, so a
    whole figure costs one trace generation.

    Two engines produce the miss counts:

    - [`Icache] — one full {!Icache} per configuration: every per-stream,
      displacement, usage and prefetch statistic is available through
      {!caches}/{!find}.
    - [`Stackdist] — one {!Stackdist} all-associativity simulation,
      grouped by line size: a single pass per line size yields the miss
      count of every configuration sharing it.  Far cheaper for dense
      sweeps, but only {!misses}, {!cold_misses} and {!misses_by_config}
      are available.  Both engines implement exact per-set LRU, so their
      miss counts are byte-identical — the cross-engine CI gate enforces
      it. *)

type t

type engine = [ `Icache | `Stackdist ]

val engine_name : engine -> string
(** ["icache"] / ["stackdist"] — the spelling of the [--engine] flags. *)

val create :
  ?engine:engine ->
  ?track_usage:bool ->
  ?timeline:string * string ->
  Icache.config list ->
  t
(** Default engine [`Icache] (the fully-instrumented backend).

    [~timeline:(config_name, prefix)] designates one configuration for
    instruction-clock series: while [Olayout_telemetry.Timeline] is
    enabled, every fed run's miss delta and line-touch count for that
    configuration are attributed to the window holding the run's start
    position, under [cachesim.<prefix>.misses] /
    [cachesim.<prefix>.accesses].  Both engines produce byte-identical
    series (per-run miss deltas agree under exact per-set LRU).  Ignored
    while the timeline subsystem is disabled, keeping the hot path free
    of probe reads.

    @raise Invalid_argument for [~track_usage:true] with [`Stackdist]
    (usage histograms need per-line cache state), or when the designated
    configuration name is unknown. *)

val engine : t -> engine
val access_run : t -> Olayout_exec.Run.t -> unit

(** Replay a recorded trace through every configuration.  With a pool of
    [jobs > 1], the simulation splits into [<= jobs] disjoint contiguous
    shards replayed on separate domains — per-config caches for the
    icache engine, per-line-size distance-stack groups for stackdist,
    each owned by exactly one domain, per-shard telemetry merged in shard
    order — producing byte-identical state to a serial replay.  [keep]
    filters runs (e.g. application-owned only) before they reach the
    simulators. *)
val access_trace :
  ?pool:Olayout_par.Pool.t ->
  ?keep:(Olayout_exec.Run.t -> bool) ->
  t ->
  Olayout_exec.Trace.t ->
  unit

val flush_residents : t -> unit
(** Retire still-resident lines into the usage histograms (icache engine);
    a no-op for stackdist, which keeps no residency state. *)

(** {1 Engine-agnostic results} *)

val misses : t -> string -> int
(** Miss count of the named configuration, whatever the engine.
    @raise Invalid_argument when the name is unknown. *)

val cold_misses : t -> string -> int
(** Compulsory (first-reference) misses of the named configuration.
    @raise Invalid_argument when the name is unknown. *)

val misses_by_config : t -> (Icache.config * int) list
(** All (configuration, miss count) pairs in creation order. *)

(** {1 Icache-engine access (raise for stackdist)} *)

val caches : t -> Icache.t list
(** @raise Invalid_argument under the stackdist engine. *)

val find : t -> string -> Icache.t
(** Lookup by configuration name.
    @raise Invalid_argument when absent (naming the requested configuration
    and the available cache names) or under the stackdist engine. *)

(** A battery of cache configurations simulated over a single trace replay.

    The paper's figures sweep cache size, line size and associativity; the
    battery lets one executor walk feed every configuration at once, so a
    whole figure costs one trace generation. *)

type t

val create : ?track_usage:bool -> Icache.config list -> t
val access_run : t -> Olayout_exec.Run.t -> unit
val flush_residents : t -> unit
val caches : t -> Icache.t list
val find : t -> string -> Icache.t
(** Lookup by configuration name.
    @raise Invalid_argument when absent, naming the requested configuration
    and the available cache names. *)

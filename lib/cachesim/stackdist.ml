module Run = Olayout_exec.Run
module Telemetry = Olayout_telemetry.Telemetry

(* Aggregated over every instance, like the icache counters: figure sweeps
   run several batteries; per-configuration numbers stay in [t]. *)
let c_accesses = Telemetry.counter "cachesim.stackdist.accesses"
let c_misses = Telemetry.counter "cachesim.stackdist.misses"
let c_walk_steps = Telemetry.counter "cachesim.stackdist.walk_steps"

type slot = {
  cfg : Icache.config;
  set_bits : int;
  assoc : int;
  mutable misses : int;
  mutable cold : int;
}

(* One per distinct [set_bits] in a group.  A direct-mapped query
   ([q_cap = 1]) only asks "was any other congruent line touched since?",
   which one timestamp per [2^q_bits]-set answers in O(1); wider
   associativities ([q_cap > 1]) count entries on the recency lists. *)
type query = {
  q_bits : int;
  q_cap : int;  (* largest associativity among the query's slots *)
  q_newest : int array;  (* q_cap = 1: set -> time of its newest touch *)
}

type group = {
  line_shift : int;
  slots : slot array;
  dm_queries : query array;  (* q_cap = 1 *)
  assoc_queries : query array;  (* q_cap > 1 *)
  counts : int array;  (* per-reference scratch, indexed by set_bits *)
  (* Per-line state, direct-indexed by line number through a two-level
     paged map (kernel text sits at 0x8000_0000 — a flat array would span
     the whole address space, a hashtable costs a hashed probe per touch
     per group).  Value 0 = never referenced (the compulsory-miss test);
     otherwise, in a group without associativity queries, the line's last
     reference time, else its recency-list node + 1. *)
  mutable pages : int array array;
  (* Recency lists, only when [assoc_queries] is non-empty: one
     newest-first intrusive list per set at [list_mask + 1] sets — the
     finest granularity any associativity query needs.  Lines are never
     evicted: the structure is the full reference history. *)
  list_mask : int;  (* -1 when no assoc queries *)
  heads : int array;
  mutable prev : int array;
  mutable next : int array;
  mutable node_time : int array;
  mutable n_nodes : int;
  mutable time : int;
  mutable accesses : int;
  (* Telemetry batches, flushed once per run. *)
  mutable pending_misses : int;
  mutable pending_steps : int;
}

type t = { groups : group array; ordered : slot array }

let log2 n =
  let rec go n acc = if n <= 1 then acc else go (n lsr 1) (acc + 1) in
  go n 0

let is_pow2 n = n > 0 && n land (n - 1) = 0

let validate (cfg : Icache.config) =
  if not (is_pow2 cfg.Icache.size_bytes && is_pow2 cfg.Icache.line_bytes) then
    invalid_arg "Stackdist.create: size and line must be powers of two";
  if cfg.Icache.line_bytes < 4 then
    invalid_arg "Stackdist.create: line must hold at least one 4-byte instruction";
  if cfg.Icache.assoc < 1 || cfg.Icache.size_bytes < cfg.Icache.line_bytes * cfg.Icache.assoc
  then invalid_arg "Stackdist.create: bad associativity"

let create configs =
  List.iter validate configs;
  let ordered =
    Array.of_list
      (List.map
         (fun (cfg : Icache.config) ->
           {
             cfg;
             set_bits = log2 (cfg.Icache.size_bytes / (cfg.Icache.line_bytes * cfg.Icache.assoc));
             assoc = cfg.Icache.assoc;
             misses = 0;
             cold = 0;
           })
         configs)
  in
  let line_sizes =
    List.sort_uniq compare (List.map (fun (c : Icache.config) -> c.Icache.line_bytes) configs)
  in
  let groups =
    Array.of_list
      (List.map
         (fun line_bytes ->
           let slots =
             Array.of_list
               (List.filter
                  (fun s -> s.cfg.Icache.line_bytes = line_bytes)
                  (Array.to_list ordered))
           in
           let max_bits = Array.fold_left (fun m s -> max m s.set_bits) 0 slots in
           let queries =
             Array.to_list slots
             |> List.map (fun s -> s.set_bits)
             |> List.sort_uniq compare
             |> List.map (fun j ->
                    let cap =
                      Array.fold_left
                        (fun m s -> if s.set_bits = j then max m s.assoc else m)
                        1 slots
                    in
                    {
                      q_bits = j;
                      q_cap = cap;
                      q_newest = (if cap = 1 then Array.make (1 lsl j) 0 else [||]);
                    })
           in
           let dm, assoc = List.partition (fun q -> q.q_cap = 1) queries in
           let list_bits =
             List.fold_left (fun m q -> max m q.q_bits) (-1) assoc
           in
           {
             line_shift = log2 line_bytes;
             slots;
             dm_queries = Array.of_list dm;
             assoc_queries = Array.of_list assoc;
             counts = Array.make (max_bits + 1) 0;
             pages = Array.make 64 [||];
             list_mask = (if list_bits < 0 then -1 else (1 lsl list_bits) - 1);
             heads = (if list_bits < 0 then [||] else Array.make (1 lsl list_bits) (-1));
             prev = Array.make 1024 (-1);
             next = Array.make 1024 (-1);
             node_time = Array.make 1024 0;
             n_nodes = 0;
             time = 0;
             accesses = 0;
             pending_misses = 0;
             pending_steps = 0;
           })
         line_sizes)
  in
  { groups; ordered }

(* --- paged per-line state ---------------------------------------------- *)

let page_bits = 12
let page_mask = (1 lsl page_bits) - 1

let page_get g line =
  let p = line lsr page_bits in
  if p >= Array.length g.pages then 0
  else
    let pg = Array.unsafe_get g.pages p in
    if Array.length pg = 0 then 0 else Array.unsafe_get pg (line land page_mask)

let page_set g line v =
  let p = line lsr page_bits in
  if p >= Array.length g.pages then begin
    let cap = ref (Array.length g.pages * 2) in
    while p >= !cap do
      cap := !cap * 2
    done;
    let b = Array.make !cap [||] in
    Array.blit g.pages 0 b 0 (Array.length g.pages);
    g.pages <- b
  end;
  let pg = g.pages.(p) in
  let pg =
    if Array.length pg = 0 then begin
      let a = Array.make (1 lsl page_bits) 0 in
      g.pages.(p) <- a;
      a
    end
    else pg
  in
  pg.(line land page_mask) <- v

(* --- recency-list maintenance (associativity queries only) ------------- *)

let grow g =
  let cap = Array.length g.prev in
  let extend a fill =
    let b = Array.make (cap * 2) fill in
    Array.blit a 0 b 0 cap;
    b
  in
  g.prev <- extend g.prev (-1);
  g.next <- extend g.next (-1);
  g.node_time <- extend g.node_time 0

let unlink g set node =
  let p = g.prev.(node) and n = g.next.(node) in
  if p >= 0 then g.next.(p) <- n else g.heads.(set) <- n;
  if n >= 0 then g.prev.(n) <- p

let push_front g set node =
  g.prev.(node) <- -1;
  g.next.(node) <- g.heads.(set);
  if g.heads.(set) >= 0 then g.prev.(g.heads.(set)) <- node;
  g.heads.(set) <- node

(* --- one line reference ------------------------------------------------ *)

(* A line never referenced before misses in every configuration, whatever
   its geometry — no counting needed. *)
let touch_cold g line t =
  let slots = g.slots in
  for i = 0 to Array.length slots - 1 do
    let s = Array.unsafe_get slots i in
    s.misses <- s.misses + 1;
    s.cold <- s.cold + 1
  done;
  g.pending_misses <- g.pending_misses + Array.length slots;
  let dq = g.dm_queries in
  for i = 0 to Array.length dq - 1 do
    let q = Array.unsafe_get dq i in
    q.q_newest.(line land ((1 lsl q.q_bits) - 1)) <- t
  done;
  if g.list_mask >= 0 then begin
    if g.n_nodes = Array.length g.prev then grow g;
    let n = g.n_nodes in
    g.n_nodes <- n + 1;
    g.node_time.(n) <- t;
    push_front g (line land g.list_mask) n;
    page_set g line (n + 1)
  end
  else page_set g line t

(* Count conflicts since the line's previous reference at [t_x] and settle
   every slot.  A config with [2^j] sets misses iff at least [assoc]
   distinct congruent lines were referenced since:

   - direct-mapped queries read one timestamp: [q_newest.(set)] was last
     written at [t_x] by this very line, so it exceeds [t_x] iff some
     other congruent line touched the set since;
   - associativity queries count recency-list entries newer than [t_x]
     across the congruent finest lists (each list is newest-first, so the
     scan stops at the first stale entry — the referenced line itself
     never counts — and the whole query stops at its associativity cap). *)
let touch_warm g line t_x t =
  let steps = ref 0 in
  let dq = g.dm_queries in
  for i = 0 to Array.length dq - 1 do
    let q = Array.unsafe_get dq i in
    let idx = line land ((1 lsl q.q_bits) - 1) in
    g.counts.(q.q_bits) <- (if q.q_newest.(idx) > t_x then 1 else 0);
    q.q_newest.(idx) <- t;
    incr steps
  done;
  let aq = g.assoc_queries in
  for i = 0 to Array.length aq - 1 do
    let q = Array.unsafe_get aq i in
    let stride = 1 lsl q.q_bits in
    let base = line land (stride - 1) in
    let count = ref 0 in
    let s' = ref base in
    while !s' <= g.list_mask && !count < q.q_cap do
      incr steps;
      let nd = ref g.heads.(!s') in
      while !nd >= 0 && g.node_time.(!nd) > t_x && !count < q.q_cap do
        incr count;
        nd := g.next.(!nd)
      done;
      s' := !s' + stride
    done;
    g.counts.(q.q_bits) <- !count
  done;
  g.pending_steps <- g.pending_steps + !steps;
  let slots = g.slots in
  let nmiss = ref 0 in
  for i = 0 to Array.length slots - 1 do
    let s = Array.unsafe_get slots i in
    if g.counts.(s.set_bits) >= s.assoc then begin
      s.misses <- s.misses + 1;
      incr nmiss
    end
  done;
  g.pending_misses <- g.pending_misses + !nmiss

let touch_line g line =
  g.accesses <- g.accesses + 1;
  g.time <- g.time + 1;
  let t = g.time in
  let v = page_get g line in
  if v = 0 then touch_cold g line t
  else if g.list_mask < 0 then begin
    touch_warm g line v t;
    page_set g line t
  end
  else begin
    let n = v - 1 in
    touch_warm g line g.node_time.(n) t;
    (* Relocate to MRU of its finest set. *)
    let set = line land g.list_mask in
    unlink g set n;
    push_front g set n;
    g.node_time.(n) <- t
  end

(* --- run feeding ------------------------------------------------------- *)

let feed_group g (r : Run.t) =
  let first = r.addr lsr g.line_shift
  and last = (r.addr + (r.len * 4) - 1) lsr g.line_shift in
  for line = first to last do
    touch_line g line
  done;
  Telemetry.add c_accesses (last - first + 1);
  if g.pending_misses > 0 then begin
    Telemetry.add c_misses g.pending_misses;
    g.pending_misses <- 0
  end;
  if g.pending_steps > 0 then begin
    Telemetry.add c_walk_steps g.pending_steps;
    g.pending_steps <- 0
  end

let access_run_group t i r = feed_group t.groups.(i) r
let access_run t r = Array.iter (fun g -> feed_group g r) t.groups
let n_groups t = Array.length t.groups
let accesses t = Array.fold_left (fun acc g -> acc + g.accesses) 0 t.groups

(* --- results ----------------------------------------------------------- *)

let find t name =
  match
    Array.find_opt (fun s -> String.equal s.cfg.Icache.name name) t.ordered
  with
  | Some s -> s
  | None ->
      let available =
        Array.to_list t.ordered
        |> List.map (fun s -> s.cfg.Icache.name)
        |> String.concat ", "
      in
      invalid_arg
        (Printf.sprintf "Stackdist: no cache configuration %S (available: %s)" name
           (if available = "" then "none" else available))

let misses t name = (find t name).misses
let cold_misses t name = (find t name).cold
let misses_by_config t = Array.to_list (Array.map (fun s -> (s.cfg, s.misses)) t.ordered)

(* --- probes ------------------------------------------------------------ *)

(* A resolved handle onto one configuration's slot, for per-run polling
   (the timeline instrumentation reads the cumulative miss count before
   and after every fed run) without a name lookup on the hot path. *)
type probe = slot

let probe t name = find t name
let probe_misses (p : probe) = p.misses
let probe_line_shift (p : probe) = log2 p.cfg.Icache.line_bytes

let probe_group t name =
  let shift = log2 (find t name).cfg.Icache.line_bytes in
  let idx = ref (-1) in
  Array.iteri (fun i g -> if g.line_shift = shift then idx := i) t.groups;
  assert (!idx >= 0);
  !idx

module Run = Olayout_exec.Run
module Histogram = Olayout_metrics.Histogram
module Telemetry = Olayout_telemetry.Telemetry

(* Aggregated over every icache instance in the process (figure sweeps run
   dozens); per-instance numbers stay in [t]. *)
let c_accesses = Telemetry.counter "cachesim.icache_accesses"
let c_misses = Telemetry.counter "cachesim.icache_misses"

type config = { name : string; size_bytes : int; line_bytes : int; assoc : int }

let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec go n acc = if n <= 1 then acc else go (n lsr 1) (acc + 1) in
  go n 0

let config ?name ~size_kb ~line ~assoc () =
  (* Catch bad geometry where the caller wrote it, not later in [create]
     (a battery or figure may build many configs before creating any). *)
  if size_kb <= 0 then
    invalid_arg (Printf.sprintf "Icache.config: size_kb must be positive (got %d)" size_kb);
  if line <= 0 then
    invalid_arg (Printf.sprintf "Icache.config: line must be positive (got %d)" line);
  if assoc < 1 then
    invalid_arg (Printf.sprintf "Icache.config: assoc must be >= 1 (got %d)" assoc);
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "%dKB/%dB/%d-way" size_kb line assoc
  in
  { name; size_bytes = size_kb * 1024; line_bytes = line; assoc }

type usage = {
  words_used : Histogram.t;
  word_reuse : Histogram.t;
  lifetime : Histogram.t;
  counts : int array array;  (* per slot, per word: uses since install *)
  mutable lifetime_sum : int;
  mutable lifetime_n : int;
  mutable used_total : int;
}

type t = {
  cfg : config;
  line_shift : int;
  set_mask : int;
  words_per_line : int;
  tags : int array;      (* slot -> line address (addr lsr line_shift); -1 empty *)
  owners : int array;    (* slot -> 0 app / 1 kernel *)
  last_use : int array;  (* slot -> lru stamp *)
  installed : int array; (* slot -> clock at fill *)
  use_mask : int array;  (* slot -> bitmask of words touched since fill *)
  usage : usage option;
  on_miss : (int -> Run.owner -> unit) option;
  on_evict : (evictor:int -> victim:int -> unit) option;
  prefetch_next : int;
  prefetched : bool array;  (* slot -> filled by prefetch, not yet referenced *)
  mutable prefetch_fills : int;
  mutable prefetch_hits : int;
  seen_lines : (int, unit) Hashtbl.t;
  mutable clock : int;
  mutable misses : int;
  mutable miss_app : int;
  mutable miss_kernel : int;
  mutable cold : int;
  mutable fills : int;
  (* displaced.(miss_owner * 2 + victim_owner) *)
  displaced : int array;
}

let owner_code = function Run.App -> 0 | Run.Kernel -> 1

let create ?(track_usage = false) ?on_miss ?on_evict ?(prefetch_next = 0) cfg =
  if not (is_pow2 cfg.size_bytes && is_pow2 cfg.line_bytes) then
    invalid_arg "Icache.create: size and line must be powers of two";
  if cfg.line_bytes < 4 then
    invalid_arg "Icache.create: line must hold at least one 4-byte instruction";
  if cfg.assoc < 1 || cfg.size_bytes < cfg.line_bytes * cfg.assoc then
    invalid_arg "Icache.create: bad associativity";
  let n_sets = cfg.size_bytes / (cfg.line_bytes * cfg.assoc) in
  let words_per_line = cfg.line_bytes / 4 in
  if track_usage && words_per_line > 62 then
    invalid_arg "Icache.create: usage tracking limited to <= 248-byte lines";
  let slots = n_sets * cfg.assoc in
  {
    cfg;
    line_shift = log2 cfg.line_bytes;
    set_mask = n_sets - 1;
    words_per_line;
    tags = Array.make slots (-1);
    owners = Array.make slots 0;
    last_use = Array.make slots 0;
    installed = Array.make slots 0;
    use_mask = Array.make slots 0;
    usage =
      (if track_usage then
         Some
           {
             words_used = Histogram.create ();
             word_reuse = Histogram.create ~cap:15 ();
             lifetime = Histogram.create ();
             counts = Array.init slots (fun _ -> Array.make words_per_line 0);
             lifetime_sum = 0;
             lifetime_n = 0;
             used_total = 0;
           }
       else None);
    on_miss;
    on_evict;
    prefetch_next;
    prefetched = Array.make slots false;
    prefetch_fills = 0;
    prefetch_hits = 0;
    seen_lines = Hashtbl.create 4096;
    clock = 0;
    misses = 0;
    miss_app = 0;
    miss_kernel = 0;
    cold = 0;
    fills = 0;
    displaced = Array.make 4 0;
  }

let popcount mask =
  let rec go m acc = if m = 0 then acc else go (m land (m - 1)) (acc + 1) in
  go mask 0

let retire t slot =
  (* Account a line leaving the cache (replacement or final flush). *)
  match t.usage with
  | None -> ()
  | Some u ->
      let used = popcount t.use_mask.(slot) in
      Histogram.add u.words_used used;
      u.used_total <- u.used_total + used;
      let life = t.clock - t.installed.(slot) in
      Histogram.add u.lifetime (Histogram.log2_bucket life);
      u.lifetime_sum <- u.lifetime_sum + life;
      u.lifetime_n <- u.lifetime_n + 1;
      let counts = u.counts.(slot) in
      for w = 0 to t.words_per_line - 1 do
        Histogram.add u.word_reuse counts.(w);
        counts.(w) <- 0
      done

(* Install [line_addr] into its set, evicting if needed.  Shared by demand
   misses and prefetches. *)
let install t owner line_addr ~as_prefetch =
  let set = line_addr land t.set_mask in
  let base = set * t.cfg.assoc in
  let victim = ref 0 and invalid = ref (-1) in
  for i = 0 to t.cfg.assoc - 1 do
    if t.tags.(base + i) = -1 && !invalid = -1 then invalid := i;
    if t.last_use.(base + i) < t.last_use.(base + !victim) then victim := i
  done;
  let slot = base + if !invalid >= 0 then !invalid else !victim in
  if t.tags.(slot) <> -1 then begin
    if not as_prefetch then begin
      t.displaced.((owner_code owner * 2) + t.owners.(slot)) <-
        t.displaced.((owner_code owner * 2) + t.owners.(slot)) + 1
    end;
    (match t.on_evict with
    | Some f ->
        f ~evictor:(line_addr lsl t.line_shift) ~victim:(t.tags.(slot) lsl t.line_shift)
    | None -> ());
    (* A line prefetched and never demand-referenced carries no usage
       signal: retiring it would record a words_used = 0, lifetime ~ 0
       entry and skew the Fig 9/11 fractions. *)
    if not t.prefetched.(slot) then retire t slot
  end;
  t.tags.(slot) <- line_addr;
  t.owners.(slot) <- owner_code owner;
  t.last_use.(slot) <- t.clock;
  t.installed.(slot) <- t.clock;
  t.use_mask.(slot) <- 0;
  t.prefetched.(slot) <- as_prefetch;
  t.fills <- t.fills + 1;
  (* Footprint counts demand-referenced lines only: a prefetched line joins
     [seen_lines] on its first demand hit (see [touch]), never on install. *)
  if not as_prefetch && not (Hashtbl.mem t.seen_lines line_addr) then
    Hashtbl.add t.seen_lines line_addr ();
  slot

let resident t line_addr =
  let base = (line_addr land t.set_mask) * t.cfg.assoc in
  let found = ref false in
  for i = 0 to t.cfg.assoc - 1 do
    if t.tags.(base + i) = line_addr then found := true
  done;
  !found

(* Touch one line; [w0..w1] are the word indices used within it. *)
let touch t owner line_addr w0 w1 =
  t.clock <- t.clock + 1;
  Telemetry.incr c_accesses;
  let set = line_addr land t.set_mask in
  let base = set * t.cfg.assoc in
  let way = ref (-1) in
  for i = 0 to t.cfg.assoc - 1 do
    if t.tags.(base + i) = line_addr then way := i
  done;
  let mark slot =
    (match t.usage with
    | Some u ->
        let counts = u.counts.(slot) in
        for w = w0 to w1 do
          counts.(w) <- counts.(w) + 1
        done
    | None -> ());
    let bits = ((1 lsl (w1 - w0 + 1)) - 1) lsl w0 in
    t.use_mask.(slot) <- t.use_mask.(slot) lor bits
  in
  if !way >= 0 then begin
    let slot = base + !way in
    if t.prefetched.(slot) then begin
      t.prefetched.(slot) <- false;
      t.prefetch_hits <- t.prefetch_hits + 1;
      if not (Hashtbl.mem t.seen_lines line_addr) then
        Hashtbl.add t.seen_lines line_addr ()
    end;
    t.last_use.(slot) <- t.clock;
    mark slot
  end
  else begin
    t.misses <- t.misses + 1;
    Telemetry.incr c_misses;
    (* Compulsory miss: first-ever demand reference to the line, wherever
       it lands — an empty slot or (once the cache is warm) an occupied
       one.  Lines first seen as prefetch hits never miss, so never count
       as cold. *)
    if not (Hashtbl.mem t.seen_lines line_addr) then t.cold <- t.cold + 1;
    (match owner with
    | Run.App -> t.miss_app <- t.miss_app + 1
    | Run.Kernel -> t.miss_kernel <- t.miss_kernel + 1);
    (match t.on_miss with
    | Some f -> f (line_addr lsl t.line_shift) owner
    | None -> ());
    let slot = install t owner line_addr ~as_prefetch:false in
    mark slot;
    (* Sequential stream-buffer prefetch of the following lines. *)
    for next = 1 to t.prefetch_next do
      let line = line_addr + next in
      if not (resident t line) then begin
        ignore (install t owner line ~as_prefetch:true);
        t.prefetch_fills <- t.prefetch_fills + 1
      end
    done
  end

let access_run t (r : Run.t) =
  let first = r.addr and last = r.addr + (r.len * 4) - 1 in
  let first_line = first lsr t.line_shift and last_line = last lsr t.line_shift in
  let lw = t.words_per_line in
  if first_line = last_line then
    touch t r.owner first_line ((first lsr 2) land (lw - 1)) ((last lsr 2) land (lw - 1))
  else begin
    touch t r.owner first_line ((first lsr 2) land (lw - 1)) (lw - 1);
    for line = first_line + 1 to last_line - 1 do
      touch t r.owner line 0 (lw - 1)
    done;
    touch t r.owner last_line 0 ((last lsr 2) land (lw - 1))
  end

let flush_residents t =
  Array.iteri
    (fun slot tag ->
      if tag <> -1 then begin
        (* Same exclusion as replacement: a prefetched-but-never-referenced
           line contributes no usage observation. *)
        if not t.prefetched.(slot) then retire t slot;
        t.tags.(slot) <- -1;
        t.use_mask.(slot) <- 0;
        t.prefetched.(slot) <- false
      end)
    t.tags

let cfg t = t.cfg
let accesses t = t.clock
let misses t = t.misses
let misses_of t = function Run.App -> t.miss_app | Run.Kernel -> t.miss_kernel
let cold_misses t = t.cold

let displaced t ~miss ~victim =
  t.displaced.((owner_code miss * 2) + owner_code victim)

let unique_lines t = Hashtbl.length t.seen_lines
let lines_filled t = t.fills
let instrs_fetched_into_cache t = t.fills * t.words_per_line

let usage_exn t =
  match t.usage with
  | Some u -> u
  | None -> invalid_arg "Icache: usage tracking not enabled"

let words_used_histogram t = (usage_exn t).words_used
let word_reuse_histogram t = (usage_exn t).word_reuse
let lifetime_histogram t = (usage_exn t).lifetime

let mean_lifetime t =
  let u = usage_exn t in
  if u.lifetime_n = 0 then 0.0
  else float_of_int u.lifetime_sum /. float_of_int u.lifetime_n

let words_used_total t = (usage_exn t).used_total

let prefetch_fills t = t.prefetch_fills
let prefetch_hits t = t.prefetch_hits

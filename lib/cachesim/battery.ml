module Pool = Olayout_par.Pool
module Trace = Olayout_exec.Trace

type t = { caches : Icache.t array }

let create ?track_usage configs =
  { caches = Array.of_list (List.map (Icache.create ?track_usage) configs) }

let access_run t run = Array.iter (fun c -> Icache.access_run c run) t.caches

(* Sharded replay: each shard replays the (immutable, post-record) trace
   once and feeds a contiguous slice of the config array, so every Icache
   is touched by exactly one domain and no merge of cache state is needed —
   the config-list order of [caches] is untouched.  Shard telemetry
   (cachesim.* counters) merges in shard order via [Pool.map], keeping the
   totals identical to a serial replay.  Falls back to one serial pass at
   [jobs = 1], from inside another pool task, or for a single config. *)
let access_trace ?pool ?(keep = fun (_ : Olayout_exec.Run.t) -> true) t trace =
  let n = Array.length t.caches in
  let feed (lo, hi) =
    Trace.replay trace (fun run ->
        if keep run then
          for i = lo to hi do
            Icache.access_run t.caches.(i) run
          done)
  in
  if n > 0 then
    match pool with
    | Some p when Pool.jobs p > 1 && n > 1 ->
        let shards = min (Pool.jobs p) n in
        let ranges =
          List.init shards (fun s -> (s * n / shards, (((s + 1) * n) / shards) - 1))
        in
        ignore (Pool.map p feed ranges)
    | _ -> feed (0, n - 1)
let flush_residents t = Array.iter Icache.flush_residents t.caches
let caches t = Array.to_list t.caches

let find t name =
  match
    Array.find_opt (fun c -> String.equal (Icache.cfg c).Icache.name name) t.caches
  with
  | Some c -> c
  | None ->
      let available =
        Array.to_list t.caches
        |> List.map (fun c -> (Icache.cfg c).Icache.name)
        |> String.concat ", "
      in
      invalid_arg
        (Printf.sprintf "Battery.find: no cache configuration %S (available: %s)" name
           (if available = "" then "none" else available))

module Pool = Olayout_par.Pool
module Trace = Olayout_exec.Trace
module Run = Olayout_exec.Run
module Timeline = Olayout_telemetry.Timeline

type engine = [ `Icache | `Stackdist ]

(* Two interchangeable backends over the same configuration list: an array
   of full per-config simulators, or one grouped stack-distance simulation
   whose miss counts are byte-identical (both are exact per-set LRU; the
   cross-engine CI leg enforces the equality). *)
type backend = Caches of Icache.t array | Stack of Stackdist.t

(* Timeline designation: one configuration whose cumulative miss count is
   polled around every fed run, the delta attributed to the window holding
   the run's start position.  Per-run deltas are equal under both engines
   (exact per-set LRU each), so the resulting series is engine-agnostic. *)
type tl_probe = P_cache of Icache.t | P_stack of Stackdist.probe

type tl = {
  tl_misses : Timeline.series;
  tl_accesses : Timeline.series;
  tl_probe : tl_probe;
  tl_unit : int; (* cache index / stackdist group owning the probe *)
  tl_shift : int; (* log2 line_bytes of the designated configuration *)
  mutable tl_pos : int; (* cumulative fed instructions ({!access_run} path) *)
}

type t = { engine : engine; backend : backend; tl : tl option }

let engine_name = function `Icache -> "icache" | `Stackdist -> "stackdist"

let log2 n =
  let rec go n acc = if n <= 1 then acc else go (n lsr 1) (acc + 1) in
  go n 0

let designate backend (name, prefix) =
  let tl_misses = Timeline.series (Printf.sprintf "cachesim.%s.misses" prefix) in
  let tl_accesses = Timeline.series (Printf.sprintf "cachesim.%s.accesses" prefix) in
  match backend with
  | Caches caches -> (
      match
        Array.to_seq caches
        |> Seq.mapi (fun i c -> (i, c))
        |> Seq.find (fun (_, c) -> String.equal (Icache.cfg c).Icache.name name)
      with
      | Some (i, c) ->
          {
            tl_misses;
            tl_accesses;
            tl_probe = P_cache c;
            tl_unit = i;
            tl_shift = log2 (Icache.cfg c).Icache.line_bytes;
            tl_pos = 0;
          }
      | None ->
          invalid_arg
            (Printf.sprintf "Battery.create: no cache configuration %S to designate" name))
  | Stack sd ->
      let p = Stackdist.probe sd name in
      {
        tl_misses;
        tl_accesses;
        tl_probe = P_stack p;
        tl_unit = Stackdist.probe_group sd name;
        tl_shift = Stackdist.probe_line_shift p;
        tl_pos = 0;
      }

let create ?(engine = `Icache) ?track_usage ?timeline configs =
  let backend =
    match engine with
    | `Icache -> Caches (Array.of_list (List.map (Icache.create ?track_usage) configs))
    | `Stackdist ->
        if track_usage = Some true then
          invalid_arg
            "Battery.create: usage tracking needs per-line state the stackdist \
             engine does not keep; use ~engine:`Icache";
        Stack (Stackdist.create configs)
  in
  let tl =
    match timeline with
    | Some d when Timeline.enabled () -> Some (designate backend d)
    | _ -> None
  in
  { engine; backend; tl }

let engine t = t.engine

let tl_misses_now tl =
  match tl.tl_probe with
  | P_cache c -> Icache.misses c
  | P_stack p -> Stackdist.probe_misses p

let tl_lines tl (run : Run.t) =
  ((run.addr + (run.len * 4) - 1) lsr tl.tl_shift) - (run.addr lsr tl.tl_shift) + 1

let feed_all t run =
  match t.backend with
  | Caches caches -> Array.iter (fun c -> Icache.access_run c run) caches
  | Stack sd -> Stackdist.access_run sd run

let access_run t run =
  match t.tl with
  | None -> feed_all t run
  | Some tl ->
      let before = tl_misses_now tl in
      feed_all t run;
      let pos = tl.tl_pos in
      Timeline.add tl.tl_misses ~pos (tl_misses_now tl - before);
      Timeline.add tl.tl_accesses ~pos (tl_lines tl run);
      tl.tl_pos <- pos + run.Run.len

(* Sharded replay: each shard replays the (immutable, post-record) trace
   once and feeds a contiguous slice of the simulation — per-config caches
   for the icache engine, per-line-size distance-stack groups for the
   stackdist engine — so every mutable simulator is touched by exactly one
   domain and no merge of simulator state is needed.  Shard telemetry
   (cachesim.* counters) merges in shard order via [Pool.map], keeping the
   totals identical to a serial replay.  Falls back to one serial pass at
   [jobs = 1], from inside another pool task, or for a single unit. *)
let shard_replay ?pool n feed =
  if n > 0 then
    match pool with
    | Some p when Pool.jobs p > 1 && n > 1 ->
        let shards = min (Pool.jobs p) n in
        let ranges =
          List.init shards (fun s -> (s * n / shards, (((s + 1) * n) / shards) - 1))
        in
        ignore (Pool.map p feed ranges)
    | _ -> feed (0, n - 1)

(* Only the shard owning the designated unit carries the timeline probe:
   its position counter restarts at the battery's cumulative position and
   advances per kept run, identically at any shard count (each shard
   replays the full trace), so the series is byte-identical to serial. *)
let tl_for t lo hi =
  match t.tl with
  | Some tl when tl.tl_unit >= lo && tl.tl_unit <= hi -> Some tl
  | _ -> None

let replay_shard trace keep tl feed =
  match tl with
  | None -> Trace.replay trace (fun run -> if keep run then feed run)
  | Some tl ->
      let pos = ref tl.tl_pos in
      Trace.replay trace (fun run ->
          if keep run then begin
            let before = tl_misses_now tl in
            feed run;
            Timeline.add tl.tl_misses ~pos:!pos (tl_misses_now tl - before);
            Timeline.add tl.tl_accesses ~pos:!pos (tl_lines tl run);
            pos := !pos + run.Run.len
          end);
      tl.tl_pos <- !pos

let access_trace ?pool ?(keep = fun (_ : Olayout_exec.Run.t) -> true) t trace =
  match t.backend with
  | Caches caches ->
      shard_replay ?pool (Array.length caches) (fun (lo, hi) ->
          replay_shard trace keep (tl_for t lo hi) (fun run ->
              for i = lo to hi do
                Icache.access_run caches.(i) run
              done))
  | Stack sd ->
      shard_replay ?pool (Stackdist.n_groups sd) (fun (lo, hi) ->
          replay_shard trace keep (tl_for t lo hi) (fun run ->
              for g = lo to hi do
                Stackdist.access_run_group sd g run
              done))

let flush_residents t =
  match t.backend with
  | Caches caches -> Array.iter Icache.flush_residents caches
  | Stack _ -> ()  (* no per-line residency state to retire *)

let caches_exn t what =
  match t.backend with
  | Caches caches -> caches
  | Stack _ ->
      invalid_arg
        (Printf.sprintf
           "Battery.%s: the stackdist engine keeps no per-config caches (use \
            misses/misses_by_config, or ~engine:`Icache)"
           what)

let caches t = Array.to_list (caches_exn t "caches")

let find t name =
  let caches = caches_exn t "find" in
  match
    Array.find_opt (fun c -> String.equal (Icache.cfg c).Icache.name name) caches
  with
  | Some c -> c
  | None ->
      let available =
        Array.to_list caches
        |> List.map (fun c -> (Icache.cfg c).Icache.name)
        |> String.concat ", "
      in
      invalid_arg
        (Printf.sprintf "Battery.find: no cache configuration %S (available: %s)" name
           (if available = "" then "none" else available))

let misses t name =
  match t.backend with
  | Caches _ -> Icache.misses (find t name)
  | Stack sd -> Stackdist.misses sd name

let cold_misses t name =
  match t.backend with
  | Caches _ -> Icache.cold_misses (find t name)
  | Stack sd -> Stackdist.cold_misses sd name

let misses_by_config t =
  match t.backend with
  | Caches caches ->
      Array.to_list (Array.map (fun c -> (Icache.cfg c, Icache.misses c)) caches)
  | Stack sd -> Stackdist.misses_by_config sd

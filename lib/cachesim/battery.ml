module Pool = Olayout_par.Pool
module Trace = Olayout_exec.Trace

type engine = [ `Icache | `Stackdist ]

(* Two interchangeable backends over the same configuration list: an array
   of full per-config simulators, or one grouped stack-distance simulation
   whose miss counts are byte-identical (both are exact per-set LRU; the
   cross-engine CI leg enforces the equality). *)
type backend = Caches of Icache.t array | Stack of Stackdist.t

type t = { engine : engine; backend : backend }

let engine_name = function `Icache -> "icache" | `Stackdist -> "stackdist"

let create ?(engine = `Icache) ?track_usage configs =
  match engine with
  | `Icache ->
      {
        engine;
        backend = Caches (Array.of_list (List.map (Icache.create ?track_usage) configs));
      }
  | `Stackdist ->
      if track_usage = Some true then
        invalid_arg
          "Battery.create: usage tracking needs per-line state the stackdist \
           engine does not keep; use ~engine:`Icache";
      { engine; backend = Stack (Stackdist.create configs) }

let engine t = t.engine

let access_run t run =
  match t.backend with
  | Caches caches -> Array.iter (fun c -> Icache.access_run c run) caches
  | Stack sd -> Stackdist.access_run sd run

(* Sharded replay: each shard replays the (immutable, post-record) trace
   once and feeds a contiguous slice of the simulation — per-config caches
   for the icache engine, per-line-size distance-stack groups for the
   stackdist engine — so every mutable simulator is touched by exactly one
   domain and no merge of simulator state is needed.  Shard telemetry
   (cachesim.* counters) merges in shard order via [Pool.map], keeping the
   totals identical to a serial replay.  Falls back to one serial pass at
   [jobs = 1], from inside another pool task, or for a single unit. *)
let shard_replay ?pool n feed =
  if n > 0 then
    match pool with
    | Some p when Pool.jobs p > 1 && n > 1 ->
        let shards = min (Pool.jobs p) n in
        let ranges =
          List.init shards (fun s -> (s * n / shards, (((s + 1) * n) / shards) - 1))
        in
        ignore (Pool.map p feed ranges)
    | _ -> feed (0, n - 1)

let access_trace ?pool ?(keep = fun (_ : Olayout_exec.Run.t) -> true) t trace =
  match t.backend with
  | Caches caches ->
      shard_replay ?pool (Array.length caches) (fun (lo, hi) ->
          Trace.replay trace (fun run ->
              if keep run then
                for i = lo to hi do
                  Icache.access_run caches.(i) run
                done))
  | Stack sd ->
      shard_replay ?pool (Stackdist.n_groups sd) (fun (lo, hi) ->
          Trace.replay trace (fun run ->
              if keep run then
                for g = lo to hi do
                  Stackdist.access_run_group sd g run
                done))

let flush_residents t =
  match t.backend with
  | Caches caches -> Array.iter Icache.flush_residents caches
  | Stack _ -> ()  (* no per-line residency state to retire *)

let caches_exn t what =
  match t.backend with
  | Caches caches -> caches
  | Stack _ ->
      invalid_arg
        (Printf.sprintf
           "Battery.%s: the stackdist engine keeps no per-config caches (use \
            misses/misses_by_config, or ~engine:`Icache)"
           what)

let caches t = Array.to_list (caches_exn t "caches")

let find t name =
  let caches = caches_exn t "find" in
  match
    Array.find_opt (fun c -> String.equal (Icache.cfg c).Icache.name name) caches
  with
  | Some c -> c
  | None ->
      let available =
        Array.to_list caches
        |> List.map (fun c -> (Icache.cfg c).Icache.name)
        |> String.concat ", "
      in
      invalid_arg
        (Printf.sprintf "Battery.find: no cache configuration %S (available: %s)" name
           (if available = "" then "none" else available))

let misses t name =
  match t.backend with
  | Caches _ -> Icache.misses (find t name)
  | Stack sd -> Stackdist.misses sd name

let cold_misses t name =
  match t.backend with
  | Caches _ -> Icache.cold_misses (find t name)
  | Stack sd -> Stackdist.cold_misses sd name

let misses_by_config t =
  match t.backend with
  | Caches caches ->
      Array.to_list (Array.map (fun c -> (Icache.cfg c, Icache.misses c)) caches)
  | Stack sd -> Stackdist.misses_by_config sd

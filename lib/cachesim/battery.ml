type t = { caches : Icache.t array }

let create ?track_usage configs =
  { caches = Array.of_list (List.map (Icache.create ?track_usage) configs) }

let access_run t run = Array.iter (fun c -> Icache.access_run c run) t.caches
let flush_residents t = Array.iter Icache.flush_residents t.caches
let caches t = Array.to_list t.caches

let find t name =
  match
    Array.find_opt (fun c -> String.equal (Icache.cfg c).Icache.name name) t.caches
  with
  | Some c -> c
  | None ->
      let available =
        Array.to_list t.caches
        |> List.map (fun c -> (Icache.cfg c).Icache.name)
        |> String.concat ", "
      in
      invalid_arg
        (Printf.sprintf "Battery.find: no cache configuration %S (available: %s)" name
           (if available = "" then "none" else available))

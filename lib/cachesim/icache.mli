(** Set-associative LRU instruction cache simulator.

    Consumes instruction-fetch runs ({!Olayout_exec.Run.t}) and accounts, per
    the paper's metrics:

    - misses, split by the *missing* stream (application vs kernel) and, on
      each replacement, by the *owner* of the displaced line — giving the
      Figure 13 interference matrix;
    - unique cache lines touched (the "footprint in cache lines" in-text
      measurement);
    - optionally, spatial/temporal line-usage instrumentation: unique words
      used before replacement (Fig 9), per-word use counts before
      replacement (Fig 10), and line lifetimes in cache accesses (Fig 11).

    Time is measured in cache accesses ("cache cycles"), one access per
    cache line touched by a fetch run. *)

type config = { name : string; size_bytes : int; line_bytes : int; assoc : int }
(** [size_bytes], [line_bytes] powers of two; [assoc >= 1];
    [size_bytes >= line_bytes * assoc]. *)

val config : ?name:string -> size_kb:int -> line:int -> assoc:int -> unit -> config
(** Convenience constructor; derives a descriptive name when absent.
    @raise Invalid_argument on non-positive [size_kb] or [line], or
    [assoc < 1] — geometry errors are reported where the configuration is
    written, not later when a cache is created from it. *)

type t

val create :
  ?track_usage:bool ->
  ?on_miss:(int -> Olayout_exec.Run.owner -> unit) ->
  ?on_evict:(evictor:int -> victim:int -> unit) ->
  ?prefetch_next:int ->
  config ->
  t
(** [track_usage] enables the Fig 9/10/11 instrumentation (line word masks,
    per-word counters and lifetimes); only supported for lines of at most
    248 bytes.  Default false.  [on_miss] is invoked with the missing line's
    byte address on every miss — the hook that feeds a unified L2.

    [on_evict] is invoked on every replacement of a valid line (demand
    misses and prefetch installs alike; cold fills into empty slots are not
    replacements) with the byte addresses of the incoming ([evictor]) and
    outgoing ([victim]) lines — the hook the diagnostics layer uses to
    build eviction conflict matrices.  On a demand miss [on_miss] fires
    first, then [on_evict] once the victim is chosen.

    [prefetch_next] models a simple sequential stream buffer: on a demand
    miss to line L, the next [prefetch_next] lines are brought in as well
    (not counted as misses; their evictions are accounted normally).  The
    paper's §6 argues layout optimizations make such prefetching more
    effective by lengthening sequential runs — the [prefetch] bench
    verifies that.  Default 0 (off). *)

val access_run : t -> Olayout_exec.Run.t -> unit
(** Fetch a run through the cache. *)

val flush_residents : t -> unit
(** Account all still-resident lines as if replaced, so the usage histograms
    cover every demand-referenced line ever filled (prefetched lines never
    demand-referenced are excluded, as on replacement — they carry no usage
    signal).  Call once at end of simulation, before reading the usage
    statistics. *)

(** Aggregate counters. *)

val cfg : t -> config
val accesses : t -> int
val misses : t -> int
val misses_of : t -> Olayout_exec.Run.owner -> int

val cold_misses : t -> int
(** Compulsory misses: demand misses whose line had never been referenced
    before, wherever the fill lands (not "fills into empty slots" — a
    first-ever reference arriving once the cache is warm is still cold).
    Without prefetching this equals {!unique_lines}. *)

val displaced : t -> miss:Olayout_exec.Run.owner -> victim:Olayout_exec.Run.owner -> int
(** Replacements in which a miss from [miss] evicted a line owned by
    [victim] (cold fills excluded). *)

val unique_lines : t -> int
(** Distinct line addresses ever demand-referenced.  Lines brought in by
    the sequential prefetcher count only once actually used; a prefetched
    line evicted before any reference never inflates the footprint. *)

val instrs_fetched_into_cache : t -> int
(** Words brought in by line fills (fills x words-per-line); with
    [track_usage], compare with {!words_used_total} for the paper's
    "fetched but never used" percentages. *)

val lines_filled : t -> int

(** Usage instrumentation (require [track_usage]; raise otherwise). *)

val words_used_histogram : t -> Olayout_metrics.Histogram.t
(** Per replacement: number of distinct words used while resident (Fig 9). *)

val word_reuse_histogram : t -> Olayout_metrics.Histogram.t
(** Per word of each replaced line: times used while resident, 0 included,
    capped at 15 (Fig 10). *)

val lifetime_histogram : t -> Olayout_metrics.Histogram.t
(** Per replacement: floor(log2(cache accesses while resident)) (Fig 11). *)

val mean_lifetime : t -> float
(** Mean residency in cache accesses across replacements. *)

val words_used_total : t -> int
(** Total distinct-word usages across replaced lines. *)

(** Prefetch statistics (zero when [prefetch_next] is 0). *)

val prefetch_fills : t -> int
(** Lines brought in by the sequential prefetcher. *)

val prefetch_hits : t -> int
(** Demand accesses that hit a line while it was still marked as
    prefetched-but-unreferenced (the prefetcher's useful work). *)
